#include "workload/synth.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hh"
#include "workload/context.hh"

namespace califorms
{

namespace
{

// Disjoint base addresses so no two workloads alias (the attack-mix
// interleaves two regions of its own).
constexpr Addr kZipfBase = 0x4000'0000ull;
constexpr Addr kStreamBase = 0x5000'0000ull;
constexpr Addr kRingBase = 0x6000'0000ull;
constexpr Addr kStackBase = 0x7f00'0000ull;
constexpr Addr kAttackBase = 0x8000'0000ull;
constexpr Addr kThrashBase = 0x9000'0000ull;
constexpr Addr kScanHotBase = 0xa000'0000ull;
constexpr Addr kMixedHotBase = 0xb000'0000ull;
constexpr Addr kScanStreamBase = 0xc000'0000ull;
constexpr Addr kMixedStreamBase = 0xe000'0000ull;

std::size_t
roundedStride(const SynthParams &p)
{
    return (p.strideBytes + 7) & ~std::size_t{7};
}

/**
 * 2^x using only IEEE-exact operations (*, /, sqrt are correctly
 * rounded by the standard; pow/exp2 are not and differ across libm
 * implementations, which would break the bit-identical-across-
 * platforms contract the committed bench baselines rely on).
 */
double
pow2det(double x)
{
    const bool neg = x < 0;
    if (neg)
        x = -x;
    double result = 1.0;
    while (x >= 1.0) {
        result *= 2.0;
        x -= 1.0;
    }
    double term = 2.0;
    for (int bit = 0; bit < 40 && x > 0; ++bit) {
        term = std::sqrt(term);
        x *= 2.0;
        if (x >= 1.0) {
            result *= term;
            x -= 1.0;
        }
    }
    return neg ? 1.0 / result : result;
}

/** Common budget bookkeeping: emit() counts down the op budget. */
class BudgetedGenerator : public TraceReader
{
  public:
    explicit BudgetedGenerator(std::uint64_t ops) : remaining_(ops) {}

    bool
    next(TraceOp &op) final
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        op = produce();
        return true;
    }

    /** Batch fast path for the fleet replay loop: one virtual call
     *  per batch, produce() dispatched directly. */
    std::size_t
    fill(TraceOp *out, std::size_t max) final
    {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining_, max));
        for (std::size_t i = 0; i < n; ++i)
            out[i] = produce();
        remaining_ -= n;
        return n;
    }

  protected:
    virtual TraceOp produce() = 0;

  private:
    std::uint64_t remaining_;
};

/**
 * Zipfian pointer-chase. Slot ranks are drawn from a bucketed power
 * law: doubling-size buckets [2^i-1, 2^(i+1)-1) weighted r^i with
 * r = 2^(1-alpha) — the standard zipf bucket mass — then uniform
 * within the bucket; rank -> slot through a fixed odd-multiplier hash
 * so the hot set scatters across the footprint instead of sitting in
 * one contiguous prefix.
 */
class ZipfGenerator final : public BudgetedGenerator
{
  public:
    ZipfGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), rng_(p.seed),
          stride_(roundedStride(p)),
          slots_(std::max<std::size_t>(1,
                                       p.footprintKb * 1024 / stride_))
    {
        const double r = pow2det(1.0 - p.zipfAlpha);
        double weight = 1.0;
        double total = 0.0;
        for (std::size_t lo = 1; lo - 1 < slots_; lo *= 2) {
            total += weight;
            cumulative_.push_back(total);
            bucketLo_.push_back(lo - 1);
            weight *= r;
        }
    }

  private:
    TraceOp
    produce() override
    {
        const std::uint64_t roll = rng_.nextBelow(16);
        if (roll >= 14)
            return TraceOp::compute(
                static_cast<std::uint32_t>(1 + rng_.nextBelow(8)));
        const Addr addr = sample();
        if (roll >= 12)
            return TraceOp::store(addr, 8, rng_.next());
        // Most loads are dependent: the pointer-chase serial chain.
        return TraceOp::load(addr, 8, roll < 9);
    }

    Addr
    sample()
    {
        const double u = rng_.nextDouble() * cumulative_.back();
        std::size_t bucket = 0;
        while (bucket + 1 < cumulative_.size() &&
               u >= cumulative_[bucket])
            ++bucket;
        const std::size_t lo = bucketLo_[bucket];
        const std::size_t hi =
            std::min(slots_, 2 * (lo + 1) - 1);
        const std::size_t rank = lo + rng_.nextBelow(hi - lo);
        const std::size_t slot =
            static_cast<std::size_t>(rank * 0x9e3779b97f4a7c15ull) %
            slots_;
        return kZipfBase + slot * stride_;
    }

    Rng rng_;
    std::size_t stride_;
    std::size_t slots_;
    std::vector<double> cumulative_;
    std::vector<std::size_t> bucketLo_;
};

/** Sequential streaming scan: loads marching through the footprint,
 *  a store every 8th element, a compute block every 16th. */
class StreamGenerator final : public BudgetedGenerator
{
  public:
    StreamGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), stride_(roundedStride(p)),
          slots_(std::max<std::size_t>(1,
                                       p.footprintKb * 1024 / stride_))
    {}

  private:
    TraceOp
    produce() override
    {
        const std::uint64_t i = pos_++;
        const Addr addr = kStreamBase + (i % slots_) * stride_;
        if (i % 16 == 15)
            return TraceOp::compute(4);
        if (i % 8 == 7)
            return TraceOp::store(addr, 8, i);
        return TraceOp::load(addr, 8);
    }

    std::size_t stride_;
    std::size_t slots_;
    std::uint64_t pos_ = 0;
};

/**
 * Stack-churn call tree: a sawtooth of call frames. Entering a frame
 * issues the frame's CFORM set followed by a local store; returning
 * loads a local and unsets the security bytes — the stack allocator's
 * protection protocol as a raw op stream. The pop depth varies with
 * the fanout, so deep frames churn more than the root, like a real
 * call tree's leaves.
 */
class StackChurnGenerator final : public BudgetedGenerator
{
  public:
    StackChurnGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), rng_(p.seed),
          maxDepth_(std::max<std::size_t>(1, p.stackDepth)),
          fanout_(std::max<std::size_t>(1, p.stackFanout))
    {}

  private:
    // Each frame's line holds 3 security bytes at offsets 56-58;
    // locals live in the first 24 bytes, so frames never fault.
    static constexpr SecurityMask kFrameMask = 0x0700'0000'0000'0000ull;

    Addr
    frameLine(std::size_t depth) const
    {
        return kStackBase - 64 * (depth + 1);
    }

    TraceOp
    produce() override
    {
        if (descending_) {
            if (phase_ == 0) {
                phase_ = 1;
                return TraceOp::cformOp(
                    makeSetOp(frameLine(depth_), kFrameMask));
            }
            phase_ = 0;
            const TraceOp op = TraceOp::store(
                frameLine(depth_) + 8 * (depth_ % 3), 8, depth_);
            ++depth_;
            if (depth_ == maxDepth_) {
                descending_ = false;
                popsLeft_ = 1 + rng_.nextBelow(
                                    std::min(depth_, fanout_));
            }
            return op;
        }
        if (phase_ == 0) {
            phase_ = 1;
            return TraceOp::load(frameLine(depth_ - 1) + 16, 8);
        }
        phase_ = 0;
        --depth_;
        const TraceOp op = TraceOp::cformOp(
            makeUnsetOp(frameLine(depth_), kFrameMask));
        if (--popsLeft_ == 0 || depth_ == 0)
            descending_ = true;
        return op;
    }

    Rng rng_;
    std::size_t maxDepth_;
    std::size_t fanout_;
    std::size_t depth_ = 0;
    std::size_t popsLeft_ = 0;
    unsigned phase_ = 0;
    bool descending_ = true;
};

/**
 * Producer-consumer ring: the producer writes bursts of slots and
 * publishes a head word; the consumer polls the head and reads the
 * slots half a ring behind. The shared control line ping-pongs between
 * the two roles, the data slots are reused at a fixed lag.
 */
class RingGenerator final : public BudgetedGenerator
{
  public:
    RingGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), stride_(roundedStride(p)),
          slots_(std::max<std::size_t>(2, p.ringSlots)),
          burst_(std::max<std::size_t>(1, p.ringBurst))
    {}

  private:
    Addr
    slotAddr(std::uint64_t index) const
    {
        return kRingBase + 64 + (index % slots_) * stride_;
    }

    TraceOp
    produce() override
    {
        // Round script: publish head, write burst, poll head, read
        // burst (lagged by half the ring).
        const std::size_t in_round = phase_;
        phase_ = (phase_ + 1) % (2 * burst_ + 2);
        if (in_round == 0)
            return TraceOp::store(kRingBase, 8, head_);
        if (in_round <= burst_)
            return TraceOp::store(slotAddr(head_ + in_round - 1), 8,
                                  head_ + in_round);
        if (in_round == burst_ + 1)
            return TraceOp::load(kRingBase, 8, true);
        const std::uint64_t lag = head_ + slots_ / 2;
        const TraceOp op = TraceOp::load(
            slotAddr(lag + in_round - burst_ - 2), 8);
        if (in_round == 2 * burst_ + 1)
            head_ += burst_;
        return op;
    }

    std::size_t stride_;
    std::size_t slots_;
    std::size_t burst_;
    std::uint64_t head_ = 0;
    std::size_t phase_ = 0;
};

/**
 * Attack mix: uniform benign traffic over its own region, with one
 * attack probe every attackPeriod ops against a pool of CFORM-
 * protected objects — the Section 7.3 linear byte scan, so offsets
 * walk upward until a security byte trips the exception, then the
 * "respawned" attacker moves to the next object. The first ops
 * establish the protected spans (CFORM set, one per object).
 */
class AttackMixGenerator final : public BudgetedGenerator
{
  public:
    AttackMixGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), rng_(p.seed),
          stride_(roundedStride(p)),
          benignSlots_(std::max<std::size_t>(
              1, p.footprintKb * 1024 / 4 / stride_)),
          period_(std::max<std::size_t>(8, p.attackPeriod))
    {}

  private:
    static constexpr std::size_t kObjects = 8;
    // Security bytes at offsets 3-5 of each object's line: the span a
    // full/3 policy would realistically harvest.
    static constexpr SecurityMask kObjectMask = 0x38;

    Addr
    objectAddr(std::size_t index) const
    {
        return kAttackBase + index * 4096;
    }

    TraceOp
    produce() override
    {
        if (established_ < kObjects) {
            return TraceOp::cformOp(
                makeSetOp(objectAddr(established_++), kObjectMask));
        }
        if (++sinceProbe_ >= period_) {
            sinceProbe_ = 0;
            const Addr addr =
                objectAddr(victim_) + scanOffset_;
            const bool hit = scanOffset_ >= 3 && scanOffset_ <= 5;
            ++scanOffset_;
            if (hit) {
                // Crash + respawn: next object, fresh scan.
                victim_ = (victim_ + 1) % kObjects;
                scanOffset_ = 0;
            } else if (scanOffset_ >= 64) {
                scanOffset_ = 0;
            }
            return TraceOp::load(addr, 1);
        }
        const Addr addr = kAttackBase + 0x0100'0000ull +
                          rng_.nextBelow(benignSlots_) * stride_;
        if (rng_.nextBelow(4) == 0)
            return TraceOp::store(addr, 8, rng_.next());
        return TraceOp::load(addr, 8, rng_.nextBelow(2) == 0);
    }

    Rng rng_;
    std::size_t stride_;
    std::size_t benignSlots_;
    std::size_t period_;
    std::size_t established_ = 0;
    std::size_t sinceProbe_ = 0;
    std::size_t victim_ = 0;
    std::size_t scanOffset_ = 0;
};

/**
 * Cyclic thrash: a pure loop over a working set just larger than the
 * LLC — the textbook LRU worst case. Under LRU every access evicts the
 * line that will be needed soonest, so the whole loop misses; any
 * policy that retains a resistant reserve (LIP's LRU-position inserts,
 * BRRIP's distant inserts) converts part of the loop into hits.
 */
class ThrashGenerator final : public BudgetedGenerator
{
  public:
    ThrashGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), stride_(roundedStride(p)),
          slots_(std::max<std::size_t>(1, p.thrashKb * 1024 / stride_))
    {}

  private:
    TraceOp
    produce() override
    {
        const std::uint64_t i = pos_++;
        const Addr addr = kThrashBase + (i % slots_) * stride_;
        if (i % 32 == 31)
            return TraceOp::compute(2);
        if (i % 16 == 15)
            return TraceOp::store(addr, 8, i);
        return TraceOp::load(addr, 8);
    }

    std::size_t stride_;
    std::size_t slots_;
    std::uint64_t pos_ = 0;
};

/**
 * Scan pollution: a reused hot loop (hotKb, sized to live in the L2)
 * interrupted every scanPeriod ops by a one-shot streaming episode of
 * scanKb fresh lines that are never revisited. Under LRU each episode
 * flushes the hot set out of the cache; scan-resistant policies keep
 * the dead streaming lines near eviction and preserve the hot set —
 * the workload the DRRIP-beats-LRU acceptance test pins.
 */
class ScanGenerator final : public BudgetedGenerator
{
  public:
    ScanGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), stride_(roundedStride(p)),
          hotSlots_(std::max<std::size_t>(1, p.hotKb * 1024 / stride_)),
          scanSlots_(
              std::max<std::size_t>(1, p.scanKb * 1024 / stride_)),
          hotOps_(std::max<std::size_t>(1, p.scanPeriod))
    {}

  private:
    TraceOp
    produce() override
    {
        if (!scanning_) {
            const Addr addr =
                kScanHotBase + (hotPos_ % hotSlots_) * stride_;
            ++hotPos_;
            if (++phasePos_ >= hotOps_) {
                phasePos_ = 0;
                scanning_ = true;
            }
            if (hotPos_ % 8 == 0)
                return TraceOp::store(addr, 8, hotPos_);
            return TraceOp::load(addr, 8);
        }
        // The stream never wraps: every episode walks fresh lines.
        const Addr addr = kScanStreamBase + scanPos_ * stride_;
        ++scanPos_;
        if (++phasePos_ >= scanSlots_) {
            phasePos_ = 0;
            scanning_ = false;
        }
        return TraceOp::load(addr, 8);
    }

    std::size_t stride_;
    std::size_t hotSlots_;
    std::size_t scanSlots_;
    std::size_t hotOps_;
    std::uint64_t hotPos_ = 0;
    std::uint64_t scanPos_ = 0;
    std::size_t phasePos_ = 0;
    bool scanning_ = false;
};

/**
 * Mixed hot-loop + scan with CFORM-protected hot objects: the scan
 * stressor with the Califorms question attached. A quarter of the hot
 * working set is CFORM-protected up front (security bytes at offsets
 * 56-58, clear of the 8B accesses at the default 64B stride), then
 * uniform-random hot references interleave with one-shot streaming
 * episodes. Protected hot lines spill/fill in sentinel form, so
 * whether a policy preferentially evicts califormed lines shows up
 * directly in repl.cformEvictions / repl.cformVictimRate.
 */
class MixedGenerator final : public BudgetedGenerator
{
  public:
    MixedGenerator(const SynthParams &p, std::uint64_t ops)
        : BudgetedGenerator(ops), rng_(p.seed),
          stride_(roundedStride(p)),
          hotSlots_(std::max<std::size_t>(1, p.hotKb * 1024 / stride_)),
          scanSlots_(
              std::max<std::size_t>(1, p.scanKb * 1024 / stride_)),
          hotOps_(std::max<std::size_t>(1, p.scanPeriod)),
          protect_(std::max<std::size_t>(1, hotSlots_ / 4))
    {}

  private:
    Addr
    hotAddr(std::size_t slot) const
    {
        return kMixedHotBase + (slot % hotSlots_) * stride_;
    }

    TraceOp
    produce() override
    {
        if (established_ < protect_) {
            return TraceOp::cformOp(makeSetOp(
                lineBase(hotAddr(established_++)), kMixedProtectMask));
        }
        if (!scanning_) {
            if (++phasePos_ >= hotOps_) {
                phasePos_ = 0;
                scanning_ = true;
            }
            const Addr addr = hotAddr(rng_.nextBelow(hotSlots_));
            if (rng_.nextBelow(8) == 0)
                return TraceOp::store(addr, 8, rng_.next());
            return TraceOp::load(addr, 8, rng_.nextBelow(2) == 0);
        }
        const Addr addr = kMixedStreamBase + scanPos_ * stride_;
        ++scanPos_;
        if (++phasePos_ >= scanSlots_) {
            phasePos_ = 0;
            scanning_ = false;
        }
        return TraceOp::load(addr, 8);
    }

    // Same tail placement as the multi-core protect preamble: 3
    // security bytes at offsets 56-58, clear of the data accesses at
    // the default stride (sub-line strides may legitimately trip them;
    // the exception unit absorbs that like any probe).
    static constexpr SecurityMask kMixedProtectMask =
        0x0700'0000'0000'0000ull;

    Rng rng_;
    std::size_t stride_;
    std::size_t hotSlots_;
    std::size_t scanSlots_;
    std::size_t hotOps_;
    std::size_t protect_;
    std::size_t established_ = 0;
    std::uint64_t scanPos_ = 0;
    std::size_t phasePos_ = 0;
    bool scanning_ = false;
};

SpecBenchmark
synthBench(const char *name)
{
    const std::string bench = name;
    return {bench, false, [bench](KernelContext &ctx) {
                const SynthParams &p = ctx.synth();
                const unsigned cores = ctx.machine().coreCount();
                if (cores == 1) {
                    // Historical single-core path, kept verbatim so
                    // core.count=1 runs stay bit-identical to the
                    // committed baselines.
                    const auto gen =
                        makeSynthGenerator(bench, p, ctx.n(p.ops));
                    runTrace(ctx.machine(), *gen);
                    return;
                }
                auto streams =
                    makeSynthStreams(bench, p, ctx.n(p.ops), cores);
                std::vector<TraceReader *> raw;
                raw.reserve(streams.size());
                for (const auto &s : streams)
                    raw.push_back(s.get());
                runTraceInterleaved(ctx.machine(), raw);
            }};
}

// Security bytes at offsets 56-58 of a protected line: clear of the
// first 56 bytes, where every generator's 8B accesses land with the
// default 64B stride, so the preamble protects without perturbing the
// benign traffic (sub-line strides may legitimately trip them, which
// the exception unit absorbs like any attack probe).
constexpr SecurityMask kProtectMask = 0x0700'0000'0000'0000ull;

/**
 * The hottest lines a generator will share across cores, per workload:
 * zipf's top-ranked slots (through the same rank->slot hash the
 * generator uses), the stream scan's first lines, and the ring's
 * control word plus leading slots. stackchurn and attackmix already
 * issue their own CFORM traffic over shared lines, so they need no
 * preamble.
 */
Trace
protectPreamble(const std::string &name, const SynthParams &p)
{
    std::vector<Addr> lines;
    const std::size_t stride = roundedStride(p);
    const std::size_t want = p.protectLines;
    const auto addLine = [&lines, want](Addr addr) {
        const Addr la = lineBase(addr);
        if (lines.size() < want &&
            std::find(lines.begin(), lines.end(), la) == lines.end())
            lines.push_back(la);
    };

    if (want) {
        if (name == "zipf") {
            const std::size_t slots = std::max<std::size_t>(
                1, p.footprintKb * 1024 / stride);
            for (std::size_t rank = 0;
                 lines.size() < want && rank < 8 * want + 64; ++rank) {
                const std::size_t slot = static_cast<std::size_t>(
                                             rank *
                                             0x9e3779b97f4a7c15ull) %
                                         slots;
                addLine(kZipfBase + slot * stride);
            }
        } else if (name == "stream") {
            const std::size_t slots = std::max<std::size_t>(
                1, p.footprintKb * 1024 / stride);
            for (std::size_t i = 0; lines.size() < want && i < slots;
                 ++i)
                addLine(kStreamBase + i * stride);
        } else if (name == "ring") {
            const std::size_t slots =
                std::max<std::size_t>(2, p.ringSlots);
            addLine(kRingBase);
            for (std::size_t i = 0; lines.size() < want && i < slots;
                 ++i)
                addLine(kRingBase + 64 + i * stride);
        }
    }

    Trace out;
    out.reserve(lines.size());
    for (const Addr la : lines)
        out.push_back(TraceOp::cformOp(makeSetOp(la, kProtectMask)));
    return out;
}

/** A fixed op prefix stitched in front of another stream. */
class PreambleReader final : public TraceReader
{
  public:
    PreambleReader(Trace preamble, std::unique_ptr<TraceReader> rest)
        : preamble_(std::move(preamble)), rest_(std::move(rest))
    {}

    bool
    next(TraceOp &op) override
    {
        if (pos_ < preamble_.size()) {
            op = preamble_[pos_++];
            return true;
        }
        return rest_->next(op);
    }

  private:
    Trace preamble_;
    std::size_t pos_ = 0;
    std::unique_ptr<TraceReader> rest_;
};

} // namespace

const std::vector<std::string> &
synthWorkloadNames()
{
    // The first kClassicWorkloads names are the historical
    // synthSuite(); the adversarial replacement stressors follow.
    static const std::vector<std::string> names = {
        "zipf", "stream", "stackchurn", "ring", "attackmix",
        "thrash", "scan",  "mixed"};
    return names;
}

bool
isSynthWorkload(const std::string &name)
{
    const auto &names = synthWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<TraceReader>
makeSynthGenerator(const std::string &name, const SynthParams &params,
                   std::uint64_t ops)
{
    if (name == "zipf")
        return std::make_unique<ZipfGenerator>(params, ops);
    if (name == "stream")
        return std::make_unique<StreamGenerator>(params, ops);
    if (name == "stackchurn")
        return std::make_unique<StackChurnGenerator>(params, ops);
    if (name == "ring")
        return std::make_unique<RingGenerator>(params, ops);
    if (name == "attackmix")
        return std::make_unique<AttackMixGenerator>(params, ops);
    if (name == "thrash")
        return std::make_unique<ThrashGenerator>(params, ops);
    if (name == "scan")
        return std::make_unique<ScanGenerator>(params, ops);
    if (name == "mixed")
        return std::make_unique<MixedGenerator>(params, ops);
    throw std::invalid_argument("unknown synthetic workload: " + name);
}

std::vector<std::unique_ptr<TraceReader>>
makeSynthStreams(const std::string &name, const SynthParams &params,
                 std::uint64_t ops_per_core, unsigned cores)
{
    std::vector<std::unique_ptr<TraceReader>> streams;
    streams.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
        SynthParams pc = params;
        pc.seed = params.seed + params.coreSeedStride * c;
        auto gen = makeSynthGenerator(name, pc, ops_per_core);
        if (c == 0 && cores > 1) {
            Trace pre = protectPreamble(name, params);
            if (!pre.empty())
                gen = std::make_unique<PreambleReader>(std::move(pre),
                                                       std::move(gen));
        }
        streams.push_back(std::move(gen));
    }
    return streams;
}

const std::vector<SpecBenchmark> &
synthSuite()
{
    // The classic five only: the workload-suite / multicore / memlp
    // bench baselines iterate this suite, so growing it would change
    // their committed grids. The adversarial stressors form their own
    // suite below (bench_repl_policies / BENCH_repl.json).
    static const std::vector<SpecBenchmark> suite = [] {
        std::vector<SpecBenchmark> benches;
        const auto &names = synthWorkloadNames();
        for (std::size_t i = 0; i < kClassicWorkloads; ++i)
            benches.push_back(synthBench(names[i].c_str()));
        return benches;
    }();
    return suite;
}

const std::vector<SpecBenchmark> &
adversarialSuite()
{
    static const std::vector<SpecBenchmark> suite = [] {
        std::vector<SpecBenchmark> benches;
        const auto &names = synthWorkloadNames();
        for (std::size_t i = kClassicWorkloads; i < names.size(); ++i)
            benches.push_back(synthBench(names[i].c_str()));
        return benches;
    }();
    return suite;
}

} // namespace califorms
