/**
 * @file kernels.hh
 * The SPEC CPU2006-like workload suite.
 *
 * SPEC sources and ref inputs cannot be shipped, so each benchmark is
 * modelled by a synthetic kernel that reproduces its published memory
 * behaviour: working set size relative to the Table 3 cache hierarchy,
 * pointer-chasing vs streaming vs random probing mix, allocation
 * intensity, struct shapes (and therefore padding opportunities), and
 * compute-to-memory ratio. The suite drives every performance figure
 * (4, 10, 11, 12); the paper's exclusions are tagged so the software
 * experiments run the same 16-benchmark subset as Section 8.2.
 */

#ifndef CALIFORMS_WORKLOAD_KERNELS_HH
#define CALIFORMS_WORKLOAD_KERNELS_HH

#include <functional>
#include <string>
#include <vector>

#include "workload/context.hh"

namespace califorms
{

/** One suite entry. */
struct SpecBenchmark
{
    std::string name;
    /** False for the three benchmarks the paper's software evaluation
     *  omits (dealII, omnetpp: library issues; gcc: allocator issue). */
    bool inSoftwareEval = true;
    std::function<void(KernelContext &)> run;
};

/** The 19 C/C++ benchmarks of Figure 10, in the paper's order. */
const std::vector<SpecBenchmark> &spec2006Suite();

/** Look up a benchmark by name (throws if unknown). */
const SpecBenchmark &findBenchmark(const std::string &name);

/** The struct definitions a kernel allocates (exposed for the density
 *  pass and for tests). */
std::vector<StructDefPtr> kernelStructs(const std::string &name);

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_KERNELS_HH
