#include "workload/runner.hh"

#include <stdexcept>

#include "workload/synth.hh"

namespace califorms
{

RunConfig &
RunConfig::withCform(bool on)
{
    heap.useCform = on;
    stack.useCform = on;
    return *this;
}

RunResult
runBenchmark(const SpecBenchmark &bench, const RunConfig &config)
{
    if (config.machine.core.count > 1 && !isSynthWorkload(bench.name))
        throw std::invalid_argument(
            "benchmark '" + bench.name +
            "' cannot honor core.count > 1 (only the synthetic "
            "workloads fan out one stream per core)");

    Machine machine(config.machine, ExceptionUnit::Policy::Record);
    HeapAllocator heap(machine, config.heap);
    StackAllocator stack(machine, config.stack);
    LayoutTransformer transformer(config.policy, config.policyParams,
                                  config.layoutSeed);
    KernelContext ctx(machine, heap, stack, std::move(transformer),
                      config.kernelSeed, config.scale, config.synth,
                      config.attack, config.layoutSeed);

    bench.run(ctx);

    RunResult result;
    result.benchmark = bench.name;
    result.cycles = machine.cycles();
    result.instructions = machine.instructions();
    result.mem = machine.memStats();
    result.heap = heap.stats();
    result.exceptionsDelivered = machine.exceptions().deliveredCount();
    result.exceptionsSuppressed = machine.exceptions().suppressedCount();
    result.security = ctx.securityResult();
    if (machine.coreCount() > 1) {
        result.cores.reserve(machine.coreCount());
        for (unsigned c = 0; c < machine.coreCount(); ++c) {
            CoreRunStats core;
            core.cycles = machine.coreCycles(c);
            core.instructions = machine.coreInstructions(c);
            core.mem = machine.coreMemStats(c);
            result.cores.push_back(core);
        }
    }
    return result;
}

double
slowdownVs(const RunResult &baseline, const RunResult &result)
{
    if (baseline.cycles == 0)
        return 0.0;
    return static_cast<double>(result.cycles) /
               static_cast<double>(baseline.cycles) -
           1.0;
}

} // namespace califorms
