#include "workload/primitives.hh"

#include <algorithm>
#include <numeric>

namespace califorms
{

namespace
{

/** Index of the first scalar field of at least @p min_size bytes;
 *  falls back to field 0. */
std::size_t
linkFieldIndex(const SecureLayout &layout, std::size_t min_size)
{
    for (std::size_t i = 0; i < layout.fields.size(); ++i)
        if (layout.fields[i].size >= min_size)
            return i;
    return 0;
}

} // namespace

StructArray
allocArray(KernelContext &ctx, const StructDefPtr &def, std::size_t count)
{
    StructArray arr;
    arr.layout = ctx.layoutOf(def);
    arr.count = count;
    arr.base = ctx.heap().allocate(arr.layout, count);
    return arr;
}

RawArray
allocRaw(KernelContext &ctx, std::size_t bytes)
{
    return RawArray{ctx.heap().allocateRaw(bytes), bytes};
}

void
rawStream(KernelContext &ctx, const RawArray &arr, unsigned passes,
          unsigned compute)
{
    const std::size_t words = arr.bytes / 8;
    for (unsigned p = 0; p < passes; ++p) {
        for (std::size_t w = 0; w < words; ++w) {
            const Addr a = arr.base + 8 * w;
            ctx.machine().load(a, 8);
            if (w % 8 == 0)
                ctx.machine().store(a, 8, w + p);
            if (compute)
                ctx.machine().compute(compute);
        }
    }
}

void
rawProbe(KernelContext &ctx, const RawArray &arr, std::size_t probes,
         unsigned compute)
{
    const std::size_t words = arr.bytes / 8;
    for (std::size_t p = 0; p < probes; ++p) {
        const Addr a = arr.base + 8 * ctx.rng().nextBelow(words);
        ctx.machine().load(a, 8);
        if (compute)
            ctx.machine().compute(compute);
    }
}

void
pointerChase(KernelContext &ctx, const StructArray &arr, std::size_t steps,
             unsigned extra_fields, unsigned compute,
             unsigned dep_quarters)
{
    const SecureLayout &layout = *arr.layout;
    const std::size_t link = linkFieldIndex(layout, 4);

    // Build a single-cycle random permutation (Sattolo's algorithm) so
    // the chase visits every element before repeating — the classic
    // linked list walk.
    std::vector<std::uint32_t> next(arr.count);
    std::iota(next.begin(), next.end(), 0);
    for (std::size_t i = arr.count - 1; i > 0; --i) {
        const std::size_t j = ctx.rng().nextBelow(i);
        std::swap(next[i], next[j]);
    }
    for (std::size_t i = 0; i < arr.count; ++i)
        ctx.storeField(arr.elem(i), layout, link, next[i]);

    std::size_t cur = 0;
    for (std::size_t s = 0; s < steps; ++s) {
        const bool dependent = (s % 4) < dep_quarters;
        const std::uint64_t nxt =
            ctx.loadField(arr.elem(cur), layout, link, dependent);
        for (unsigned f = 0; f < extra_fields &&
                             f + 1 < layout.fields.size(); ++f)
            ctx.loadField(arr.elem(cur), layout, f + 1 == link ? 0 : f + 1);
        if (compute)
            ctx.machine().compute(compute);
        cur = static_cast<std::size_t>(nxt) % arr.count;
    }
}

void
streamPass(KernelContext &ctx, const StructArray &arr, unsigned passes,
           unsigned fields_per_elem, unsigned compute)
{
    const SecureLayout &layout = *arr.layout;
    const std::size_t nfields = layout.fields.size();
    for (unsigned p = 0; p < passes; ++p) {
        for (std::size_t i = 0; i < arr.count; ++i) {
            const Addr e = arr.elem(i);
            const unsigned loads = std::min<unsigned>(
                fields_per_elem, static_cast<unsigned>(nfields));
            for (unsigned f = 0; f < loads; ++f)
                ctx.loadField(e, layout, f);
            ctx.storeField(e, layout, 0, i + p);
            if (compute)
                ctx.machine().compute(compute);
        }
    }
}

void
randomProbe(KernelContext &ctx, const StructArray &arr, std::size_t probes,
            unsigned compute)
{
    const SecureLayout &layout = *arr.layout;
    const std::size_t nfields = layout.fields.size();
    for (std::size_t p = 0; p < probes; ++p) {
        const std::size_t i = ctx.rng().nextBelow(arr.count);
        const Addr e = arr.elem(i);
        ctx.loadField(e, layout, 0);
        if (nfields > 1)
            ctx.loadField(e, layout, nfields / 2);
        if (compute)
            ctx.machine().compute(compute);
    }
}

void
allocChurn(KernelContext &ctx, const std::vector<StructDefPtr> &defs,
           std::size_t pool_size, std::size_t rounds, unsigned compute)
{
    struct Live
    {
        Addr addr;
        std::shared_ptr<const SecureLayout> layout;
    };
    std::vector<Live> pool;
    pool.reserve(pool_size);

    auto touch = [&](const Live &obj) {
        const std::size_t nfields = obj.layout->fields.size();
        ctx.storeField(obj.addr, *obj.layout, 0, 1);
        if (nfields > 1)
            ctx.loadField(obj.addr, *obj.layout, nfields - 1);
    };

    for (std::size_t i = 0; i < pool_size; ++i) {
        const auto &def = defs[ctx.rng().nextBelow(defs.size())];
        Live obj{0, ctx.layoutOf(def)};
        obj.addr = ctx.heap().allocate(obj.layout);
        touch(obj);
        pool.push_back(std::move(obj));
    }

    for (std::size_t r = 0; r < rounds; ++r) {
        const std::size_t victim = ctx.rng().nextBelow(pool.size());
        ctx.heap().free(pool[victim].addr);
        const auto &def = defs[ctx.rng().nextBelow(defs.size())];
        Live obj{0, ctx.layoutOf(def)};
        obj.addr = ctx.heap().allocate(obj.layout);
        touch(obj);
        pool[victim] = std::move(obj);
        if (compute)
            ctx.machine().compute(compute);
    }

    for (const Live &obj : pool)
        ctx.heap().free(obj.addr);
}

void
stackWork(KernelContext &ctx, const StructDefPtr &def, unsigned depth,
          unsigned touches, std::size_t repeats)
{
    const auto layout = ctx.layoutOf(def);
    for (std::size_t r = 0; r < repeats; ++r) {
        std::vector<Addr> locals;
        for (unsigned d = 0; d < depth; ++d) {
            ctx.stack().enterFrame();
            const Addr local = ctx.stack().allocateLocal(layout);
            locals.push_back(local);
            for (unsigned t = 0; t < touches; ++t) {
                const std::size_t f =
                    ctx.rng().nextBelow(layout->fields.size());
                ctx.storeField(local, *layout, f, t);
                ctx.loadField(local, *layout, f);
            }
            ctx.machine().compute(4);
        }
        for (unsigned d = 0; d < depth; ++d)
            ctx.stack().leaveFrame();
    }
}

} // namespace califorms
