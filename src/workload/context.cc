#include "workload/context.hh"

#include <algorithm>

namespace califorms
{

KernelContext::KernelContext(Machine &machine, HeapAllocator &heap,
                             StackAllocator &stack,
                             LayoutTransformer transformer,
                             std::uint64_t kernel_seed, double scale,
                             SynthParams synth, AttackParams attack,
                             std::uint64_t layout_seed)
    : machine_(machine), heap_(heap), stack_(stack),
      transformer_(std::move(transformer)), rng_(kernel_seed),
      scale_(scale), synth_(synth), attack_(std::move(attack)),
      layoutSeed_(layout_seed)
{
}

std::shared_ptr<const SecureLayout>
KernelContext::layoutOf(const StructDefPtr &def)
{
    auto it = layoutCache_.find(def.get());
    if (it != layoutCache_.end())
        return it->second;
    auto layout =
        std::make_shared<SecureLayout>(transformer_.transform(*def));
    layoutCache_.emplace(def.get(), layout);
    return layout;
}

std::uint64_t
KernelContext::loadField(Addr elem_base, const SecureLayout &layout,
                         std::size_t field_idx, bool depends_on_prev)
{
    const FieldLayout &f = layout.fields.at(field_idx);
    const auto size =
        static_cast<unsigned>(std::min<std::size_t>(f.size, 8));
    return machine_.load(elem_base + f.offset, size, depends_on_prev);
}

void
KernelContext::storeField(Addr elem_base, const SecureLayout &layout,
                          std::size_t field_idx, std::uint64_t value)
{
    const FieldLayout &f = layout.fields.at(field_idx);
    const auto size =
        static_cast<unsigned>(std::min<std::size_t>(f.size, 8));
    machine_.store(elem_base + f.offset, size, value);
}

} // namespace califorms
