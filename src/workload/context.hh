/**
 * @file context.hh
 * Execution context handed to workload kernels.
 *
 * A kernel sees the simulated machine, the Califorms-aware heap and
 * stack allocators, a deterministic RNG, and a layout transformer
 * configured with the experiment's insertion policy. Kernels obtain
 * security-byte-transformed layouts through layoutOf(), so the same
 * kernel code runs the baseline (policy None) and every policy
 * configuration — only the layouts and the CFORM traffic differ,
 * exactly like recompiling a SPEC benchmark with the paper's LLVM pass.
 */

#ifndef CALIFORMS_WORKLOAD_CONTEXT_HH
#define CALIFORMS_WORKLOAD_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "alloc/heap.hh"
#include "alloc/stack.hh"
#include "layout/policy.hh"
#include "security/scenario_params.hh"
#include "sim/machine.hh"
#include "util/rng.hh"
#include "workload/synth_params.hh"

namespace califorms
{

class KernelContext
{
  public:
    KernelContext(Machine &machine, HeapAllocator &heap,
                  StackAllocator &stack, LayoutTransformer transformer,
                  std::uint64_t kernel_seed, double scale,
                  SynthParams synth = {}, AttackParams attack = {},
                  std::uint64_t layout_seed = 0);

    Machine &machine() { return machine_; }
    HeapAllocator &heap() { return heap_; }
    StackAllocator &stack() { return stack_; }
    Rng &rng() { return rng_; }
    double scale() const { return scale_; }

    /** Knobs of the synthetic workload generators (workload.* keys);
     *  the SPEC-like kernels ignore them. */
    const SynthParams &synth() const { return synth_; }

    /** Knobs of the attack scenarios (attack.* keys); only the attack
     *  replay benchmark consumes them. */
    const AttackParams &attack() const { return attack_; }

    /** The run's layout configuration, exposed so the attack kernel
     *  can respawn victims under per-trial seeds. */
    InsertionPolicy layoutPolicy() const { return transformer_.policy(); }
    const PolicyParams &layoutParams() const
    {
        return transformer_.params();
    }
    std::uint64_t layoutSeed() const { return layoutSeed_; }

    /** Security counters the attack kernel publishes (empty for every
     *  other benchmark, keeping their reports byte-identical). */
    SecurityRunStats &securityResult() { return security_; }

    /** Scale an iteration count by the context's work multiplier. */
    std::size_t
    n(std::size_t base) const
    {
        const auto scaled =
            static_cast<std::size_t>(static_cast<double>(base) * scale_);
        return scaled > 0 ? scaled : 1;
    }

    /** Policy-transformed layout for @p def, cached per definition. */
    std::shared_ptr<const SecureLayout> layoutOf(const StructDefPtr &def);

    // Field access helpers ---------------------------------------------
    /** Load field @p field_idx of the element at @p elem_base. */
    std::uint64_t loadField(Addr elem_base, const SecureLayout &layout,
                            std::size_t field_idx,
                            bool depends_on_prev = false);

    /** Store @p value into field @p field_idx. */
    void storeField(Addr elem_base, const SecureLayout &layout,
                    std::size_t field_idx, std::uint64_t value);

  private:
    Machine &machine_;
    HeapAllocator &heap_;
    StackAllocator &stack_;
    LayoutTransformer transformer_;
    Rng rng_;
    double scale_;
    SynthParams synth_;
    AttackParams attack_;
    std::uint64_t layoutSeed_;
    SecurityRunStats security_;
    std::unordered_map<const StructDef *,
                       std::shared_ptr<const SecureLayout>>
        layoutCache_;
};

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_CONTEXT_HH
