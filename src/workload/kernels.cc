#include "workload/kernels.hh"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "security/scenarios.hh"
#include "workload/primitives.hh"
#include "workload/synth.hh"

namespace califorms
{

namespace
{

// Struct factories -----------------------------------------------------
//
// Each factory builds the representative compound types of its
// namesake benchmark. Shapes matter: char/short fields next to wider
// fields create the padding the opportunistic policy harvests, and
// arrays/pointers are what the intelligent policy fences.

using F = Field;

StructDefPtr
astarNode()
{
    return std::make_shared<StructDef>(
        "astar_node",
        std::vector<F>{{"x", Type::intType()},
                       {"y", Type::intType()},
                       {"g", Type::floatType()},
                       {"h", Type::floatType()},
                       {"parent", Type::pointer("astar_node")},
                       {"flags", Type::charType()}});
}

StructDefPtr
bzip2Block()
{
    return std::make_shared<StructDef>(
        "bzip2_block",
        std::vector<F>{{"data", Type::array(Type::intType(), 14)},
                       {"crc", Type::intType()},
                       {"state", Type::charType()}});
}

StructDefPtr
dealiiCell()
{
    return std::make_shared<StructDef>(
        "dealii_cell",
        std::vector<F>{{"jacobian", Type::array(Type::doubleType(), 4)},
                       {"level", Type::shortType()},
                       {"refined", Type::charType()},
                       {"neighbors", Type::array(Type::pointer(), 4)},
                       {"measure", Type::doubleType()}});
}

std::vector<StructDefPtr>
gccNodes()
{
    auto expr = std::make_shared<StructDef>(
        "gcc_tree_expr",
        std::vector<F>{{"code", Type::charType()},
                       {"type", Type::pointer("tree")},
                       {"op0", Type::pointer("tree")},
                       {"op1", Type::pointer("tree")},
                       {"flags", Type::shortType()}});
    auto decl = std::make_shared<StructDef>(
        "gcc_tree_decl",
        std::vector<F>{{"code", Type::charType()},
                       {"name", Type::pointer("char")},
                       {"uid", Type::intType()},
                       {"initial", Type::pointer("tree")},
                       {"attrs", Type::charType()}});
    auto rtx = std::make_shared<StructDef>(
        "gcc_rtx",
        std::vector<F>{{"code", Type::shortType()},
                       {"mode", Type::charType()},
                       {"ops", Type::array(Type::pointer(), 3)}});
    return {expr, decl, rtx};
}

StructDefPtr
gobmkBoard()
{
    return std::make_shared<StructDef>(
        "gobmk_board_state",
        std::vector<F>{{"board", Type::array(Type::charType(), 41)},
                       {"ko_pos", Type::intType()},
                       {"captures", Type::array(Type::intType(), 2)},
                       {"hash", Type::longType()}});
}

StructDefPtr
h264Macroblock()
{
    return std::make_shared<StructDef>(
        "h264_macroblock",
        std::vector<F>{{"qp", Type::charType()},
                       {"mb_type", Type::shortType()},
                       {"mvd", Type::array(Type::shortType(), 16)},
                       {"cbp", Type::intType()},
                       {"intra_pred", Type::array(Type::charType(), 9)},
                       {"ref_pic", Type::pointer("picture")}});
}

StructDefPtr
hmmerState()
{
    return std::make_shared<StructDef>(
        "hmmer_dp_cell",
        std::vector<F>{{"mmx", Type::intType()},
                       {"imx", Type::intType()},
                       {"dmx", Type::intType()},
                       {"xmx", Type::intType()}});
}

StructDefPtr
lbmCell()
{
    return std::make_shared<StructDef>(
        "lbm_cell",
        std::vector<F>{{"f", Type::array(Type::doubleType(), 19)},
                       {"flags", Type::charType()}});
}

StructDefPtr
libquantumGate()
{
    return std::make_shared<StructDef>(
        "quantum_reg_node",
        std::vector<F>{{"state", Type::longType()},
                       {"amp_re", Type::floatType()},
                       {"amp_im", Type::floatType()}});
}

std::vector<StructDefPtr>
mcfStructs()
{
    auto node = std::make_shared<StructDef>(
        "mcf_node",
        std::vector<F>{{"potential", Type::longType()},
                       {"orientation", Type::charType()},
                       {"child", Type::pointer("node")},
                       {"pred", Type::pointer("node")},
                       {"basic_arc", Type::pointer("arc")},
                       {"flow", Type::longType()},
                       {"depth", Type::intType()}});
    auto arc = std::make_shared<StructDef>(
        "mcf_arc",
        std::vector<F>{{"cost", Type::longType()},
                       {"tail", Type::pointer("node")},
                       {"head", Type::pointer("node")},
                       {"ident", Type::shortType()},
                       {"flow", Type::longType()}});
    return {node, arc};
}

StructDefPtr
milcSite()
{
    return std::make_shared<StructDef>(
        "milc_site",
        std::vector<F>{{"link", Type::array(Type::doubleType(), 18)},
                       {"coords", Type::array(Type::intType(), 6)},
                       {"parity", Type::charType()}});
}

StructDefPtr
namdAtom()
{
    return std::make_shared<StructDef>(
        "namd_atom",
        std::vector<F>{{"pos", Type::array(Type::doubleType(), 3)},
                       {"vel", Type::array(Type::doubleType(), 3)},
                       {"charge", Type::floatType()},
                       {"type", Type::shortType()}});
}

StructDefPtr
omnetppMessage()
{
    return std::make_shared<StructDef>(
        "omnetpp_cmessage",
        std::vector<F>{{"kind", Type::shortType()},
                       {"priority", Type::charType()},
                       {"timestamp", Type::doubleType()},
                       {"src_gate", Type::pointer("cGate")},
                       {"dst_gate", Type::pointer("cGate")},
                       {"payload", Type::array(Type::charType(), 12)}});
}

std::vector<StructDefPtr>
perlStructs()
{
    auto sv = std::make_shared<StructDef>(
        "perl_sv",
        std::vector<F>{{"any", Type::pointer()},
                       {"refcnt", Type::intType()},
                       {"flags", Type::charType()}});
    auto hek = std::make_shared<StructDef>(
        "perl_hek",
        std::vector<F>{{"hash", Type::intType()},
                       {"len", Type::shortType()},
                       {"key", Type::array(Type::charType(), 13)}});
    auto op = std::make_shared<StructDef>(
        "perl_op",
        std::vector<F>{{"next", Type::pointer("op")},
                       {"sibling", Type::pointer("op")},
                       {"ppaddr", Type::functionPointer()},
                       {"type", Type::charType()},
                       {"flags", Type::charType()}});
    return {sv, hek, op};
}

StructDefPtr
povrayRay()
{
    return std::make_shared<StructDef>(
        "povray_intersection",
        std::vector<F>{{"point", Type::array(Type::doubleType(), 3)},
                       {"normal", Type::array(Type::doubleType(), 3)},
                       {"depth", Type::doubleType()},
                       {"object", Type::pointer("object")},
                       {"inside", Type::charType()}});
}

StructDefPtr
sjengEntry()
{
    return std::make_shared<StructDef>(
        "sjeng_hash_entry",
        std::vector<F>{{"hash", Type::longType()},
                       {"score", Type::shortType()},
                       {"best_move", Type::shortType()},
                       {"depth", Type::charType()},
                       {"flag", Type::charType()}});
}

StructDefPtr
soplexNonzero()
{
    return std::make_shared<StructDef>(
        "soplex_nonzero",
        std::vector<F>{{"val", Type::doubleType()},
                       {"idx", Type::intType()}});
}

StructDefPtr
sphinxSenone()
{
    return std::make_shared<StructDef>(
        "sphinx_senone",
        std::vector<F>{{"means", Type::array(Type::floatType(), 8)},
                       {"vars", Type::array(Type::floatType(), 8)},
                       {"mixw", Type::shortType()},
                       {"active", Type::charType()}});
}

std::vector<StructDefPtr>
xalanStructs()
{
    auto node = std::make_shared<StructDef>(
        "xalan_dom_node",
        std::vector<F>{{"node_type", Type::charType()},
                       {"parent", Type::pointer("DOMNode")},
                       {"first_child", Type::pointer("DOMNode")},
                       {"next_sibling", Type::pointer("DOMNode")},
                       {"name_id", Type::intType()}});
    auto attr = std::make_shared<StructDef>(
        "xalan_attribute",
        std::vector<F>{{"name_id", Type::intType()},
                       {"flags", Type::charType()},
                       {"value", Type::pointer("XMLCh")}});
    return {node, attr};
}

// Kernels ---------------------------------------------------------------
//
// Iteration counts and compute ratios are calibrated so the suite's
// cache behaviour brackets the Table 3 hierarchy the way the real
// benchmarks do: hmmer lives in the L1, xalancbmk in the L2, mcf just
// beyond the L3, lbm/libquantum/milc in DRAM. Bulk scalar arrays are
// allocated raw (the compiler pass never pads int/double arrays), so
// the insertion policies inflate exactly the struct-resident share of
// each footprint.

/** astar: A* path finding — pointer-heavy graph walk over an L3-scale
 *  node pool with real search work at every expansion. */
void
kernelAstar(KernelContext &ctx)
{
    StructArray nodes = allocArray(ctx, astarNode(), 18000);
    pointerChase(ctx, nodes, ctx.n(60000), 1, 96, 1);
    randomProbe(ctx, nodes, ctx.n(15000), 24);
}

/** bzip2: block compression — the block and sort arrays are plain int
 *  arrays (never padded); only small header structs exist. */
void
kernelBzip2(KernelContext &ctx)
{
    RawArray block = allocRaw(ctx, 900 * 1024);
    StructArray headers = allocArray(ctx, bzip2Block(), 400);
    rawStream(ctx, block, 2, 6);
    rawProbe(ctx, block, ctx.n(90000), 8);
    streamPass(ctx, headers, 4, 3, 10);
}

/** dealII: adaptive FEM — struct-dense cell sweeps with neighbor
 *  probing; working set around the L3 boundary. */
void
kernelDealii(KernelContext &ctx)
{
    StructArray cells = allocArray(ctx, dealiiCell(), 8000);
    streamPass(ctx, cells, 3, 4, 24);
    randomProbe(ctx, cells, ctx.n(15000), 18);
}

/** gcc: compilation — bursty allocation of small tree/rtx nodes plus
 *  pointer chasing through the IR. */
void
kernelGcc(KernelContext &ctx)
{
    const auto defs = gccNodes();
    allocChurn(ctx, defs, 3000, ctx.n(25000), 16);
    StructArray ir = allocArray(ctx, defs[0], 12000);
    pointerChase(ctx, ir, ctx.n(25000), 1, 48, 1);
}

/** gobmk: go engine — deep recursion with large board locals on the
 *  stack (lots of stack CFORM traffic) plus pattern probes. */
void
kernelGobmk(KernelContext &ctx)
{
    stackWork(ctx, gobmkBoard(), 24, 6, ctx.n(2600));
    StructArray patterns = allocArray(ctx, gobmkBoard(), 3000);
    randomProbe(ctx, patterns, ctx.n(90000), 14);
}

/** h264ref: video encoding — macroblock structs plus raw reference
 *  frame pixels, with per-frame buffer churn. */
void
kernelH264ref(KernelContext &ctx)
{
    const auto mb = h264Macroblock();
    RawArray ref_frame = allocRaw(ctx, 512 * 1024);
    const std::size_t frames = std::max<std::size_t>(1, ctx.n(4));
    for (std::size_t frame = 0; frame < frames; ++frame) {
        StructArray mbs = allocArray(ctx, mb, 16000);
        streamPass(ctx, mbs, 3, 4, 12);
        randomProbe(ctx, mbs, ctx.n(15000), 8);
        ctx.heap().free(mbs.base);
    }
    rawStream(ctx, ref_frame, 1, 6);
}

/** hmmer: profile HMM search — dynamic programming over a tiny,
 *  L1-resident DP matrix with heavy integer compute, plus occasional
 *  probes into an L2-resident transition table. */
void
kernelHmmer(KernelContext &ctx)
{
    StructArray dp = allocArray(ctx, hmmerState(), 500);
    RawArray transitions = allocRaw(ctx, 96 * 1024);
    streamPass(ctx, dp, std::max(1u, static_cast<unsigned>(ctx.n(300))),
               4, 16);
    rawProbe(ctx, transitions, ctx.n(20000), 12);
}

/** lbm: lattice Boltzmann — the grid is a plain array of doubles
 *  (never padded); a small control struct set rides along. */
void
kernelLbm(KernelContext &ctx)
{
    RawArray grid = allocRaw(ctx, 4000 * 1024);
    StructArray ctrl = allocArray(ctx, lbmCell(), 500);
    rawStream(ctx, grid, 2, 4);
    streamPass(ctx, ctrl, 4, 4, 10);
}

/** libquantum: quantum simulation — sequential sweeps over a large
 *  register of 16B struct nodes with almost no compute per element;
 *  the paper's most padding-sensitive benchmark (Figure 11's >80%
 *  outlier) because every byte of its footprint is a padded struct. */
void
kernelLibquantum(KernelContext &ctx)
{
    StructArray reg = allocArray(ctx, libquantumGate(), 250000);
    streamPass(ctx, reg, 2, 2, 10);
}

/** mcf: network simplex — the classic DRAM-latency-bound dependent
 *  pointer chase over nodes and arcs just beyond the L3. */
void
kernelMcf(KernelContext &ctx)
{
    const auto defs = mcfStructs();
    StructArray nodes = allocArray(ctx, defs[0], 90000);
    StructArray arcs = allocArray(ctx, defs[1], 60000);
    pointerChase(ctx, nodes, ctx.n(100000), 1, 32, 4);
    randomProbe(ctx, arcs, ctx.n(40000), 8);
}

/** milc: lattice QCD — streaming su3 matrix sweeps over a multi-MB
 *  lattice of array-dominated structs with strided neighbor gathers. */
void
kernelMilc(KernelContext &ctx)
{
    StructArray lattice = allocArray(ctx, milcSite(), 40000);
    streamPass(ctx, lattice, 3, 4, 28);
    randomProbe(ctx, lattice, ctx.n(20000), 14);
}

/** namd: molecular dynamics — cache-blocked force loops over a small
 *  atom set, dominated by floating point compute. */
void
kernelNamd(KernelContext &ctx)
{
    StructArray atoms = allocArray(ctx, namdAtom(), 1600);
    streamPass(ctx, atoms, std::max(1u, static_cast<unsigned>(ctx.n(40))),
               4, 36);
}

/** omnetpp: discrete event simulation — allocation churn of message
 *  objects through an L2-scale live pool. */
void
kernelOmnetpp(KernelContext &ctx)
{
    allocChurn(ctx, {omnetppMessage()}, 6000, ctx.n(45000), 80);
}

/** perlbench: interpreter — notoriously malloc-intensive (Section 8.2):
 *  high-rate churn of small SV/HEK/OP cells plus hash probing. */
void
kernelPerlbench(KernelContext &ctx)
{
    const auto defs = perlStructs();
    allocChurn(ctx, defs, 10000, ctx.n(40000), 56);
    StructArray symtab = allocArray(ctx, defs[1], 2500);
    randomProbe(ctx, symtab, ctx.n(25000), 8);
}

/** povray: ray tracing — deep recursive intersection stack work and a
 *  small object set; compute dominated. */
void
kernelPovray(KernelContext &ctx)
{
    stackWork(ctx, povrayRay(), 16, 4, ctx.n(1400));
    StructArray objects = allocArray(ctx, povrayRay(), 600);
    streamPass(ctx, objects, std::max(1u, static_cast<unsigned>(ctx.n(25))),
               3, 30);
}

/** sjeng: chess search — random transposition-table probes over a
 *  ~1MB table plus stack frames for the search tree. */
void
kernelSjeng(KernelContext &ctx)
{
    RawArray tt = allocRaw(ctx, 200000 * 16);
    StructArray killers = allocArray(ctx, sjengEntry(), 2000);
    rawProbe(ctx, tt, ctx.n(80000), 16);
    randomProbe(ctx, killers, ctx.n(20000), 12);
    stackWork(ctx, gobmkBoard(), 12, 3, ctx.n(500));
}

/** soplex: simplex LP — sparse nonzero structs plus raw dense vectors
 *  (the rhs/solution arrays are plain doubles). */
void
kernelSoplex(KernelContext &ctx)
{
    StructArray nz = allocArray(ctx, soplexNonzero(), 40000);
    RawArray vectors = allocRaw(ctx, 1500 * 1024);
    streamPass(ctx, nz, 10, 2, 8);
    rawStream(ctx, vectors, 4, 4);
    randomProbe(ctx, nz, ctx.n(50000), 6);
}

/** sphinx3: speech recognition — gaussian scoring over an L2/L3
 *  senone table plus raw feature frames. */
void
kernelSphinx3(KernelContext &ctx)
{
    StructArray senones = allocArray(ctx, sphinxSenone(), 9000);
    RawArray features = allocRaw(ctx, 768 * 1024);
    streamPass(ctx, senones,
               std::max(1u, static_cast<unsigned>(ctx.n(14))), 4, 18);
    rawStream(ctx, features, 2, 8);
}

/** xalancbmk: XSLT — DOM tree walking with an L2-resident node set and
 *  steady allocation of result nodes; the most L2-latency-sensitive
 *  benchmark in Figure 10. */
void
kernelXalancbmk(KernelContext &ctx)
{
    const auto defs = xalanStructs();
    StructArray dom = allocArray(ctx, defs[0], 2500);
    pointerChase(ctx, dom, ctx.n(90000), 1, 48, 1);
    allocChurn(ctx, {defs[1]}, 4000, ctx.n(25000), 8);
}


} // namespace

const std::vector<SpecBenchmark> &
spec2006Suite()
{
    static const std::vector<SpecBenchmark> suite = {
        {"astar", true, kernelAstar},
        {"bzip2", true, kernelBzip2},
        {"dealII", false, kernelDealii},
        {"gcc", false, kernelGcc},
        {"gobmk", true, kernelGobmk},
        {"h264ref", true, kernelH264ref},
        {"hmmer", true, kernelHmmer},
        {"lbm", true, kernelLbm},
        {"libquantum", true, kernelLibquantum},
        {"mcf", true, kernelMcf},
        {"milc", true, kernelMilc},
        {"namd", true, kernelNamd},
        {"omnetpp", false, kernelOmnetpp},
        {"perlbench", true, kernelPerlbench},
        {"povray", true, kernelPovray},
        {"sjeng", true, kernelSjeng},
        {"soplex", true, kernelSoplex},
        {"sphinx3", true, kernelSphinx3},
        {"xalancbmk", true, kernelXalancbmk},
    };
    return suite;
}

const SpecBenchmark &
findBenchmark(const std::string &name)
{
    for (const auto &b : spec2006Suite())
        if (b.name == name)
            return b;
    // The synthetic workload generators are benchmarks too (zipf,
    // stream, stackchurn, ring, attackmix; see workload/synth.hh) —
    // as are the adversarial replacement stressors (thrash, scan,
    // mixed).
    for (const auto &b : synthSuite())
        if (b.name == name)
            return b;
    for (const auto &b : adversarialSuite())
        if (b.name == name)
            return b;
    // The attack replay (security/scenarios.hh) is a benchmark too:
    // it runs the attack.scenario trials and fills the security block.
    for (const auto &b : securitySuite())
        if (b.name == name)
            return b;
    throw std::invalid_argument("unknown benchmark: " + name);
}

std::vector<StructDefPtr>
kernelStructs(const std::string &name)
{
    static const std::map<std::string,
                          std::function<std::vector<StructDefPtr>()>>
        factories = {
            {"astar", [] { return std::vector<StructDefPtr>{astarNode()}; }},
            {"bzip2",
             [] { return std::vector<StructDefPtr>{bzip2Block()}; }},
            {"dealII",
             [] { return std::vector<StructDefPtr>{dealiiCell()}; }},
            {"gcc", [] { return gccNodes(); }},
            {"gobmk",
             [] { return std::vector<StructDefPtr>{gobmkBoard()}; }},
            {"h264ref",
             [] { return std::vector<StructDefPtr>{h264Macroblock()}; }},
            {"hmmer",
             [] { return std::vector<StructDefPtr>{hmmerState()}; }},
            {"lbm", [] { return std::vector<StructDefPtr>{lbmCell()}; }},
            {"libquantum",
             [] { return std::vector<StructDefPtr>{libquantumGate()}; }},
            {"mcf", [] { return mcfStructs(); }},
            {"milc", [] { return std::vector<StructDefPtr>{milcSite()}; }},
            {"namd", [] { return std::vector<StructDefPtr>{namdAtom()}; }},
            {"omnetpp",
             [] { return std::vector<StructDefPtr>{omnetppMessage()}; }},
            {"perlbench", [] { return perlStructs(); }},
            {"povray",
             [] { return std::vector<StructDefPtr>{povrayRay()}; }},
            {"sjeng",
             [] { return std::vector<StructDefPtr>{sjengEntry()}; }},
            {"soplex",
             [] { return std::vector<StructDefPtr>{soplexNonzero()}; }},
            {"sphinx3",
             [] { return std::vector<StructDefPtr>{sphinxSenone()}; }},
            {"xalancbmk", [] { return xalanStructs(); }},
        };
    auto it = factories.find(name);
    if (it == factories.end())
        throw std::invalid_argument("unknown benchmark: " + name);
    return it->second();
}

} // namespace califorms
