/**
 * @file swap.hh
 * Page swap support (Sections 3 and 6.3).
 *
 * Califormed lines keep their one metadata bit in spare DRAM ECC bits, so
 * nothing leaves the memory controller in the common case. When a page is
 * swapped out, the ECC bits are not part of the page payload; the page
 * fault handler gathers the 64 per-line bits (8B per 4KB page) into a
 * reserved kernel store and restores them on swap in.
 */

#ifndef CALIFORMS_OS_SWAP_HH
#define CALIFORMS_OS_SWAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/line.hh"

namespace califorms
{

/**
 * Minimal interface the swap manager needs from main memory: read and
 * write whole lines including their califormed (ECC) bit. Both are
 * mutating operations — implementations count accesses — so the
 * manager must hold a non-const store.
 */
class LineStore
{
  public:
    virtual ~LineStore() = default;
    virtual SentinelLine readLine(Addr line_addr) = 0;
    virtual void writeLine(Addr line_addr, const SentinelLine &line) = 0;
};

/**
 * Kernel-side swap handler. Swapped-out pages live in a simulated disk
 * (data payload only, as real swap devices store no ECC) plus the
 * reserved metadata table.
 */
class SwapManager
{
  public:
    explicit SwapManager(LineStore &memory) : memory_(memory) {}

    /** Swap out the page at @p page_base; returns the 64-bit metadata
     *  word stored in the kernel table (bit i = line i califormed). */
    std::uint64_t swapOut(Addr page_base);

    /** Swap the page back in, restoring data and metadata bits. */
    void swapIn(Addr page_base);

    bool isSwappedOut(Addr page_base) const;

    /** Bytes of kernel metadata currently held (8B per page). */
    std::size_t metadataBytes() const { return 8 * disk_.size(); }

  private:
    struct SwappedPage
    {
        std::vector<LineData> payload;  //!< data only, no ECC bit
        std::uint64_t metadata = 0;     //!< reserved-space metadata word
    };

    LineStore &memory_;
    std::unordered_map<Addr, SwappedPage> disk_;
};

} // namespace califorms

#endif // CALIFORMS_OS_SWAP_HH
