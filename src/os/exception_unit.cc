#include "os/exception_unit.hh"

#include <stdexcept>

namespace califorms
{

bool
ExceptionUnit::raise(const CaliformsException &e)
{
    if (mask_depth_ > 0) {
        suppressed_.push_back(e);
        return false;
    }
    delivered_.push_back(e);
    if (policy_ == Policy::Terminate)
        terminated_ = true;
    return true;
}

void
ExceptionUnit::unmaskExceptions()
{
    if (mask_depth_ == 0)
        throw std::logic_error("ExceptionUnit: unbalanced unmask");
    --mask_depth_;
}

void
ExceptionUnit::clearLogs()
{
    delivered_.clear();
    suppressed_.clear();
    terminated_ = false;
}

} // namespace califorms
