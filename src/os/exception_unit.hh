/**
 * @file exception_unit.hh
 * Privileged exception delivery and whitelisting (Sections 4.2 and 6.3).
 *
 * Califorms exceptions are privileged and precise. Library functions that
 * legitimately sweep over security bytes (memcpy-style) are whitelisted
 * by raising the exception mask before entering them and lowering it
 * after; while masked, exceptions are recorded as suppressed instead of
 * delivered. The unit keeps full logs of both so tests and the security
 * benches can audit every event.
 */

#ifndef CALIFORMS_OS_EXCEPTION_UNIT_HH
#define CALIFORMS_OS_EXCEPTION_UNIT_HH

#include <cstddef>
#include <vector>

#include "core/exception.hh"

namespace califorms
{

/**
 * The kernel-side view of Califorms exceptions: delivery policy, mask
 * register, and audit logs.
 */
class ExceptionUnit
{
  public:
    /** What delivery does when an exception is not suppressed. */
    enum class Policy
    {
        Record,    //!< log and continue (continuous monitoring mode)
        Terminate, //!< log and mark the "process" as killed
    };

    explicit ExceptionUnit(Policy policy = Policy::Record)
        : policy_(policy)
    {}

    /**
     * Raise an exception. Returns true if it was delivered, false if the
     * exception mask suppressed it.
     */
    bool raise(const CaliformsException &e);

    /** Raise the exception mask (enter a whitelisted window). Nestable. */
    void maskExceptions() { ++mask_depth_; }
    /** Lower the exception mask. */
    void unmaskExceptions();
    bool masked() const { return mask_depth_ > 0; }

    /** True once a Terminate-policy exception has been delivered. */
    bool terminated() const { return terminated_; }

    Policy policy() const { return policy_; }
    void setPolicy(Policy p) { policy_ = p; }

    const std::vector<CaliformsException> &delivered() const
    {
        return delivered_;
    }
    const std::vector<CaliformsException> &suppressed() const
    {
        return suppressed_;
    }
    std::size_t deliveredCount() const { return delivered_.size(); }
    std::size_t suppressedCount() const { return suppressed_.size(); }

    /** Forget all recorded exceptions (keeps mask state). */
    void clearLogs();

  private:
    Policy policy_;
    unsigned mask_depth_ = 0;
    bool terminated_ = false;
    std::vector<CaliformsException> delivered_;
    std::vector<CaliformsException> suppressed_;
};

/**
 * RAII whitelist window: masks Califorms exceptions for the lifetime of
 * the guard, modeling the privileged stores that bracket whitelisted
 * functions like memcpy (Section 6.3).
 */
class WhitelistGuard
{
  public:
    explicit WhitelistGuard(ExceptionUnit &unit) : unit_(unit)
    {
        unit_.maskExceptions();
    }
    ~WhitelistGuard() { unit_.unmaskExceptions(); }

    WhitelistGuard(const WhitelistGuard &) = delete;
    WhitelistGuard &operator=(const WhitelistGuard &) = delete;

  private:
    ExceptionUnit &unit_;
};

} // namespace califorms

#endif // CALIFORMS_OS_EXCEPTION_UNIT_HH
