#include "os/swap.hh"

#include <stdexcept>

namespace califorms
{

std::uint64_t
SwapManager::swapOut(Addr page_base)
{
    if (pageBase(page_base) != page_base)
        throw std::invalid_argument("swapOut: not a page base");
    if (disk_.count(page_base))
        throw std::logic_error("swapOut: page already swapped out");

    SwappedPage page;
    page.payload.reserve(linesPerPage);
    for (std::size_t i = 0; i < linesPerPage; ++i) {
        const Addr la = page_base + i * lineBytes;
        const SentinelLine line = memory_.readLine(la);
        page.payload.push_back(line.raw);
        if (line.califormed)
            page.metadata |= 1ull << i;
        // The frame is released; model reuse by zeroing it.
        memory_.writeLine(la, SentinelLine{});
    }
    const std::uint64_t meta = page.metadata;
    disk_.emplace(page_base, std::move(page));
    return meta;
}

void
SwapManager::swapIn(Addr page_base)
{
    auto it = disk_.find(page_base);
    if (it == disk_.end())
        throw std::logic_error("swapIn: page not swapped out");

    const SwappedPage &page = it->second;
    for (std::size_t i = 0; i < linesPerPage; ++i) {
        SentinelLine line;
        line.raw = page.payload[i];
        line.califormed = (page.metadata >> i) & 1;
        memory_.writeLine(page_base + i * lineBytes, line);
    }
    disk_.erase(it);
}

bool
SwapManager::isSwappedOut(Addr page_base) const
{
    return disk_.count(page_base) != 0;
}

} // namespace califorms
