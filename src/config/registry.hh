/**
 * @file registry.hh
 * The typed simulator parameter registry: every tunable knob of the
 * Califorms machine — memory hierarchy, core model, layout policy,
 * allocators, run control — is registered here exactly once, under a
 * dotted key ("mem.l2_size_kb", "core.mlp", "layout.policy") with its
 * type, default, bounds, documentation string, and (where one exists)
 * its legacy CLI flag.
 *
 * Everything that consumes a knob renders it from this table: the
 * `--set key=value` / `--config FILE` surface of every CLI subcommand,
 * the legacy flag aliases (`--l2-kb` is the alias of mem.l2_size_kb),
 * the bench harness options, campaign sweep axes over arbitrary keys,
 * the `califorms config` schema dump, and the describeParams() machine
 * listing. Registering a knob here is the single step that makes it
 * exist everywhere; a knob that is not registered cannot be configured.
 *
 * Defaults are not written down twice: each ParamSpec captures its
 * default by reading a default-constructed RunConfig through its own
 * accessor, so the default Config materializes the pre-registry
 * Table 3 machine bit for bit, by construction.
 */

#ifndef CALIFORMS_CONFIG_REGISTRY_HH
#define CALIFORMS_CONFIG_REGISTRY_HH

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <functional>
#include <optional>
#include <variant>
#include <vector>

#include "workload/runner.hh"

namespace califorms::config
{

/**
 * Name <-> value table of a config-surface enum. Every enum knob
 * (mem.l1_format, mem.coherence, mem.repl_policy, ...) registers
 * through one of these instead of a hand-rolled name()/fromName()
 * pair, so the choices list shown in the schema, the parser, and the
 * renderer cannot drift from each other: they are all views of the
 * same entries. value() rejects unknown names with the full candidate
 * list in the error.
 */
template <typename E>
class EnumTable
{
  public:
    struct Entry
    {
        const char *name;
        E value;
    };

    EnumTable(const char *what, std::initializer_list<Entry> entries)
        : what_(what), entries_(entries)
    {
    }

    /** Config-surface name of @p value ("?" only if the table is
     *  incomplete, which the registry round-trip tests catch). */
    const char *
    name(E value) const
    {
        for (const Entry &e : entries_)
            if (e.value == value)
                return e.name;
        return "?";
    }

    /** Parse @p text; throws with the candidate list when unknown. */
    E
    value(const std::string &text) const
    {
        for (const Entry &e : entries_)
            if (text == e.name)
                return e.value;
        throw std::invalid_argument("unknown " + std::string(what_) +
                                    " '" + text + "' (expected one of " +
                                    choiceList() + ")");
    }

    /** The choices vocabulary, in table order (feeds ParamSpec). */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        for (const Entry &e : entries_)
            out.emplace_back(e.name);
        return out;
    }

    /** "{a, b, c}" for diagnostics. */
    std::string
    choiceList() const
    {
        std::string out = "{";
        for (std::size_t i = 0; i < entries_.size(); ++i)
            out += (i ? ", " : "") + std::string(entries_[i].name);
        return out + "}";
    }

  private:
    const char *what_;
    std::vector<Entry> entries_;
};

/** The value space of a registered parameter. */
enum class ParamType
{
    UInt,   //!< unsigned integer with [min, max] bounds
    Double, //!< finite double with [min, max] bounds
    Bool,   //!< true/false (also 1/0, on/off, yes/no)
    Enum,   //!< one of a fixed set of names
};

/** A typed parameter value; Enum values are stored as their name. */
using ParamValue =
    std::variant<std::uint64_t, double, bool, std::string>;

/** One registered knob. */
struct ParamSpec
{
    std::string key;  //!< dotted name, e.g. "mem.l2_size_kb"
    ParamType type = ParamType::UInt;
    ParamValue def{}; //!< captured from a default RunConfig
    std::uint64_t minU = 0, maxU = 0;   //!< UInt bounds (inclusive)
    double minD = 0, maxD = 0;          //!< Double bounds (inclusive)
    std::vector<std::string> choices;   //!< Enum vocabulary
    std::string doc;  //!< one-line description for schema/usage dumps
    /** Legacy CLI flag this key aliases ("--l2-kb"), or "" if the knob
     *  predates no flag and is reached via --set only. */
    std::string flag;
    /** Write the value into a RunConfig. */
    std::function<void(RunConfig &, const ParamValue &)> apply;
    /** Read the value back out of a RunConfig. */
    std::function<ParamValue(const RunConfig &)> read;
};

/** Render @p value as config-file / CLI text (round-trips through
 *  ParamRegistry::parse for the owning spec). */
std::string renderValue(const ParamValue &value);

/** Human name of a ParamType for diagnostics and the schema dump. */
const char *paramTypeName(ParamType type);

/**
 * The process-wide registry. Immutable after construction; lookups are
 * by key or by legacy flag. Iteration order is registration order,
 * which every dump (schema, config file, describeParams) follows.
 */
class ParamRegistry
{
  public:
    static const ParamRegistry &instance();

    const std::vector<ParamSpec> &specs() const { return specs_; }

    /** Find a spec by dotted key; nullptr if unknown. */
    const ParamSpec *find(const std::string &key) const;

    /** Find a spec by its legacy flag ("--l2-kb"); nullptr if none. */
    const ParamSpec *findFlag(const std::string &flag) const;

    /**
     * Parse and validate @p text against @p spec. On failure returns
     * std::nullopt and sets @p error to a complete diagnostic
     * (mentioning the key, the expected type/bounds, and the text).
     */
    std::optional<ParamValue> parse(const ParamSpec &spec,
                                    const std::string &text,
                                    std::string &error) const;

    /** The machine-readable schema of every registered knob, as
     *  deterministic JSON (golden-pinned by tests/golden/
     *  config_schema.json; `califorms config --schema` prints it). */
    std::string schemaJson() const;

  private:
    ParamRegistry();

    std::vector<ParamSpec> specs_;
};

} // namespace califorms::config

#endif // CALIFORMS_CONFIG_REGISTRY_HH
