#include "config/registry.hh"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "layout/policy.hh"
#include "security/scenarios.hh"
#include "security/victims.hh"
#include "util/jsonout.hh"
#include "util/parse.hh"

namespace califorms::config
{

namespace
{

/** A UInt knob: @p get/@p set view the field as uint64 (unit scaling,
 *  e.g. KB <-> bytes, lives inside the accessors). */
template <typename Get, typename Set>
ParamSpec
uintKnob(const char *key, std::uint64_t min, std::uint64_t max,
         const char *flag, const char *doc, Get get, Set set)
{
    ParamSpec s;
    s.key = key;
    s.type = ParamType::UInt;
    s.minU = min;
    s.maxU = max;
    s.flag = flag;
    s.doc = doc;
    s.apply = [set](RunConfig &rc, const ParamValue &v) {
        set(rc, std::get<std::uint64_t>(v));
    };
    s.read = [get](const RunConfig &rc) {
        return ParamValue{static_cast<std::uint64_t>(get(rc))};
    };
    return s;
}

template <typename Get, typename Set>
ParamSpec
doubleKnob(const char *key, double min, double max, const char *doc,
           Get get, Set set)
{
    ParamSpec s;
    s.key = key;
    s.type = ParamType::Double;
    s.minD = min;
    s.maxD = max;
    s.doc = doc;
    s.apply = [set](RunConfig &rc, const ParamValue &v) {
        set(rc, std::get<double>(v));
    };
    s.read = [get](const RunConfig &rc) {
        return ParamValue{static_cast<double>(get(rc))};
    };
    return s;
}

template <typename Get, typename Set>
ParamSpec
boolKnob(const char *key, const char *doc, Get get, Set set)
{
    ParamSpec s;
    s.key = key;
    s.type = ParamType::Bool;
    s.doc = doc;
    s.apply = [set](RunConfig &rc, const ParamValue &v) {
        set(rc, std::get<bool>(v));
    };
    s.read = [get](const RunConfig &rc) {
        return ParamValue{static_cast<bool>(get(rc))};
    };
    return s;
}

/** An Enum knob: @p get renders the current name, @p set consumes a
 *  validated member of @p choices. */
template <typename Get, typename Set>
ParamSpec
enumKnob(const char *key, std::vector<std::string> choices,
         const char *flag, const char *doc, Get get, Set set)
{
    ParamSpec s;
    s.key = key;
    s.type = ParamType::Enum;
    s.choices = std::move(choices);
    s.flag = flag;
    s.doc = doc;
    s.apply = [set](RunConfig &rc, const ParamValue &v) {
        set(rc, std::get<std::string>(v));
    };
    s.read = [get](const RunConfig &rc) {
        return ParamValue{std::string(get(rc))};
    };
    return s;
}

/** One registration path for every enum knob: the EnumTable is the
 *  single source of the choices vocabulary, the renderer, and the
 *  parser (which rejects unknown names with the candidate list). @p
 *  table must have static lifetime — the lambdas keep a reference. */
template <typename E, typename Get, typename Set>
ParamSpec
enumSpec(const char *key, const EnumTable<E> &table, const char *flag,
         const char *doc, Get get, Set set)
{
    return enumKnob(
        key, table.names(), flag, doc,
        [&table, get](const RunConfig &rc) {
            return table.name(get(rc));
        },
        [&table, set](RunConfig &rc, const std::string &name) {
            set(rc, table.value(name));
        });
}

const EnumTable<L1Format> &
l1FormatTable()
{
    static const EnumTable<L1Format> table(
        "L1 format", {{"bitvector", L1Format::BitVector8B},
                      {"cal4b", L1Format::Cal4B},
                      {"cal1b", L1Format::Cal1B}});
    return table;
}

const EnumTable<CoherenceKind> &
coherenceTable()
{
    static const EnumTable<CoherenceKind> table(
        "coherence kind",
        {{"none", CoherenceKind::None}, {"msi", CoherenceKind::Msi}});
    return table;
}

/** Names derive from replPolicyName() so the config vocabulary cannot
 *  drift from the sim-side table. The machine-wide knob excludes
 *  "inherit"; the per-level overrides include it. */
const EnumTable<ReplPolicy> &
replPolicyTable()
{
    static const EnumTable<ReplPolicy> table(
        "replacement policy",
        {{replPolicyName(ReplPolicy::Lru), ReplPolicy::Lru},
         {replPolicyName(ReplPolicy::Random), ReplPolicy::Random},
         {replPolicyName(ReplPolicy::Dip), ReplPolicy::Dip},
         {replPolicyName(ReplPolicy::Drrip), ReplPolicy::Drrip},
         {replPolicyName(ReplPolicy::Ship), ReplPolicy::Ship}});
    return table;
}

const EnumTable<ReplPolicy> &
replPolicyOverrideTable()
{
    static const EnumTable<ReplPolicy> table(
        "replacement policy",
        {{replPolicyName(ReplPolicy::Inherit), ReplPolicy::Inherit},
         {replPolicyName(ReplPolicy::Lru), ReplPolicy::Lru},
         {replPolicyName(ReplPolicy::Random), ReplPolicy::Random},
         {replPolicyName(ReplPolicy::Dip), ReplPolicy::Dip},
         {replPolicyName(ReplPolicy::Drrip), ReplPolicy::Drrip},
         {replPolicyName(ReplPolicy::Ship), ReplPolicy::Ship}});
    return table;
}

} // namespace

std::string
renderValue(const ParamValue &value)
{
    struct Render
    {
        std::string operator()(std::uint64_t v) const
        {
            return std::to_string(v);
        }
        std::string operator()(double v) const
        {
            return jsonNumber(v);
        }
        std::string operator()(bool v) const
        {
            return v ? "true" : "false";
        }
        std::string operator()(const std::string &v) const { return v; }
    };
    return std::visit(Render{}, value);
}

const char *
paramTypeName(ParamType type)
{
    switch (type) {
    case ParamType::UInt:
        return "uint";
    case ParamType::Double:
        return "double";
    case ParamType::Bool:
        return "bool";
    case ParamType::Enum:
        return "enum";
    }
    return "?";
}

const ParamRegistry &
ParamRegistry::instance()
{
    static const ParamRegistry registry;
    return registry;
}

ParamRegistry::ParamRegistry()
{
    // ----------------------------------------------------------------
    // mem.* — cache hierarchy and DRAM (MemSysParams, Table 3).
    // ----------------------------------------------------------------
    specs_.push_back(uintKnob(
        "mem.levels", 1, 3, "--levels",
        "cache hierarchy depth: 1 = L1 only, 2 = +L2, 3 = +L2+LLC",
        [](const RunConfig &rc) { return rc.machine.mem.levels; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.levels = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.l1_size_kb", 1, 1 << 20, "",
        "L1 data cache capacity in KB",
        [](const RunConfig &rc) { return rc.machine.mem.l1Size / 1024; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l1Size = static_cast<std::size_t>(v) * 1024;
        }));
    specs_.push_back(uintKnob(
        "mem.l1_ways", 1, 64, "", "L1 data cache associativity",
        [](const RunConfig &rc) { return rc.machine.mem.l1Ways; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l1Ways = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.l1_latency", 1, 10000, "",
        "L1 load-to-use hit latency in cycles",
        [](const RunConfig &rc) { return rc.machine.mem.l1Latency; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l1Latency = static_cast<Cycles>(v);
        }));
    specs_.push_back(enumSpec(
        "mem.l1_format", l1FormatTable(), "--l1",
        "L1 metadata organization (Table 7 / Appendix A variants)",
        [](const RunConfig &rc) { return rc.machine.mem.l1Format; },
        [](RunConfig &rc, L1Format v) {
            rc.machine.mem.l1Format = v;
        }));
    specs_.push_back(uintKnob(
        "mem.l2_size_kb", 0, 1 << 20, "--l2-kb",
        "L2 capacity in KB; 0 disables the L2",
        [](const RunConfig &rc) { return rc.machine.mem.l2Size / 1024; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l2Size = static_cast<std::size_t>(v) * 1024;
        }));
    specs_.push_back(uintKnob(
        "mem.l2_ways", 1, 64, "", "L2 associativity",
        [](const RunConfig &rc) { return rc.machine.mem.l2Ways; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l2Ways = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.l2_latency", 1, 10000, "--l2-lat",
        "L2 hit latency in cycles",
        [](const RunConfig &rc) { return rc.machine.mem.l2Latency; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l2Latency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.llc_size_kb", 0, 1 << 20, "--llc-kb",
        "LLC capacity in KB; 0 disables the LLC",
        [](const RunConfig &rc) { return rc.machine.mem.l3Size / 1024; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l3Size = static_cast<std::size_t>(v) * 1024;
        }));
    specs_.push_back(uintKnob(
        "mem.llc_ways", 1, 64, "", "LLC associativity",
        [](const RunConfig &rc) { return rc.machine.mem.l3Ways; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l3Ways = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.llc_latency", 1, 10000, "--llc-lat",
        "LLC hit latency in cycles",
        [](const RunConfig &rc) { return rc.machine.mem.l3Latency; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.l3Latency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.dram_latency", 1, 100000, "",
        "average DRAM load latency in cycles",
        [](const RunConfig &rc) { return rc.machine.mem.dramLatency; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramLatency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.extra_l2l3_latency", 0, 10000, "",
        "extra cycles on every L2/LLC access (Figure 10 pessimism)",
        [](const RunConfig &rc) {
            return rc.machine.mem.extraL2L3Latency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.extraL2L3Latency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.fill_conv_latency", 0, 10000, "--fill-conv",
        "cycles charged per sentinel->bitvector fill conversion",
        [](const RunConfig &rc) {
            return rc.machine.mem.fillConvLatency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.fillConvLatency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.spill_conv_latency", 0, 10000, "--spill-conv",
        "cycles charged per bitvector->sentinel spill conversion",
        [](const RunConfig &rc) {
            return rc.machine.mem.spillConvLatency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.spillConvLatency = static_cast<Cycles>(v);
        }));
    // Queue lookups are linear scans on the miss path; depths far
    // beyond any realistic victim buffer are rejected rather than
    // silently turning the simulator quadratic.
    specs_.push_back(uintKnob(
        "mem.wb_queue_entries", 0, 512, "--wb-queue",
        "dirty write-back queue depth (0 = immediate write-back)",
        [](const RunConfig &rc) {
            return rc.machine.mem.wbQueueEntries;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.wbQueueEntries = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.wb_hit_latency", 1, 10000, "",
        "latency of an L1 miss served from the write-back queue",
        [](const RunConfig &rc) { return rc.machine.mem.wbHitLatency; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.wbHitLatency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.mshr_entries", 0, 512, "--mshrs",
        "miss-status holding registers between the L1 and the shared "
        "side (0 = legacy blocking miss path)",
        [](const RunConfig &rc) { return rc.machine.mem.mshrEntries; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.mshrEntries = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.dram_banks", 0, 64, "--dram-banks",
        "DRAM banks with per-bank open-row timing (0 = flat "
        "mem.dram_latency model)",
        [](const RunConfig &rc) { return rc.machine.mem.dramBanks; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramBanks = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.dram_row_kb", 1, 1024, "",
        "DRAM row-buffer (page) size per bank in KB",
        [](const RunConfig &rc) {
            return rc.machine.mem.dramRowBytes / 1024;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramRowBytes =
                static_cast<std::size_t>(v) * 1024;
        }));
    specs_.push_back(uintKnob(
        "mem.dram_row_hit_latency", 1, 100000, "",
        "banked DRAM: latency of an access hitting the open row",
        [](const RunConfig &rc) {
            return rc.machine.mem.dramRowHitLatency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramRowHitLatency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.dram_row_miss_latency", 1, 100000, "",
        "banked DRAM: latency of an access to a bank with no open row",
        [](const RunConfig &rc) {
            return rc.machine.mem.dramRowMissLatency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramRowMissLatency = static_cast<Cycles>(v);
        }));
    specs_.push_back(uintKnob(
        "mem.dram_row_conflict_latency", 1, 100000, "",
        "banked DRAM: latency when another row is open (precharge + "
        "activate)",
        [](const RunConfig &rc) {
            return rc.machine.mem.dramRowConflictLatency;
        },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.mem.dramRowConflictLatency =
                static_cast<Cycles>(v);
        }));
    specs_.push_back(boolKnob(
        "mem.next_line_prefetch",
        "next-line prefetch into the L2 on L1 misses",
        [](const RunConfig &rc) {
            return rc.machine.mem.nextLinePrefetch;
        },
        [](RunConfig &rc, bool v) {
            rc.machine.mem.nextLinePrefetch = v;
        }));
    specs_.push_back(enumSpec(
        "mem.coherence", coherenceTable(), "",
        "inter-core coherence below the private L1s: none = legacy "
        "single-requester semantics, msi = invalidation-based MSI "
        "directory (only meaningful when core.count > 1)",
        [](const RunConfig &rc) { return rc.machine.mem.coherence; },
        [](RunConfig &rc, CoherenceKind v) {
            rc.machine.mem.coherence = v;
        }));
    specs_.push_back(enumSpec(
        "mem.repl_policy", replPolicyTable(), "",
        "victim-selection policy of every cache level (sim/repl/): "
        "lru = historical true-LRU machine, random = seeded "
        "deterministic, dip = LIP vs LRU set dueling, drrip = "
        "SRRIP vs BRRIP set dueling, ship = SHiP-lite signature "
        "predictor",
        [](const RunConfig &rc) { return rc.machine.mem.replPolicy; },
        [](RunConfig &rc, ReplPolicy v) {
            rc.machine.mem.replPolicy = v;
        }));
    specs_.push_back(enumSpec(
        "mem.l2_repl_policy", replPolicyOverrideTable(), "",
        "L2 override of mem.repl_policy (inherit = follow it)",
        [](const RunConfig &rc) {
            return rc.machine.mem.l2ReplPolicy;
        },
        [](RunConfig &rc, ReplPolicy v) {
            rc.machine.mem.l2ReplPolicy = v;
        }));
    specs_.push_back(enumSpec(
        "mem.llc_repl_policy", replPolicyOverrideTable(), "",
        "LLC override of mem.repl_policy (inherit = follow it)",
        [](const RunConfig &rc) {
            return rc.machine.mem.llcReplPolicy;
        },
        [](RunConfig &rc, ReplPolicy v) {
            rc.machine.mem.llcReplPolicy = v;
        }));

    // ----------------------------------------------------------------
    // core.* — out-of-order core approximation (CoreParams).
    // ----------------------------------------------------------------
    specs_.push_back(uintKnob(
        "core.count", 1, 32, "--cores",
        "number of homogeneous cores; each owns a private L1 and "
        "shares L2/LLC/DRAM (1 = the legacy single-requester machine)",
        [](const RunConfig &rc) { return rc.machine.core.count; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.core.count = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "core.issue_width", 1, 64, "", "max ops retired per cycle",
        [](const RunConfig &rc) { return rc.machine.core.issueWidth; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.core.issueWidth = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "core.mlp", 1, 1024, "",
        "overlap factor for independent misses",
        [](const RunConfig &rc) { return rc.machine.core.mlp; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.machine.core.mlp = static_cast<unsigned>(v);
        }));
    specs_.push_back(doubleKnob(
        "core.store_miss_weight", 0.0, 1.0,
        "fraction of store miss latency exposed to the window",
        [](const RunConfig &rc) {
            return rc.machine.core.storeMissWeight;
        },
        [](RunConfig &rc, double v) {
            rc.machine.core.storeMissWeight = v;
        }));
    specs_.push_back(doubleKnob(
        "core.cform_miss_weight", 0.0, 1.0,
        "fraction of CFORM miss latency exposed (Section 5.3)",
        [](const RunConfig &rc) {
            return rc.machine.core.cformMissWeight;
        },
        [](RunConfig &rc, double v) {
            rc.machine.core.cformMissWeight = v;
        }));
    specs_.push_back(doubleKnob(
        "core.dram_cycles_per_line", 0.0, 1000.0,
        "DRAM bandwidth roofline: core cycles per line moved",
        [](const RunConfig &rc) {
            return rc.machine.core.dramCyclesPerLine;
        },
        [](RunConfig &rc, double v) {
            rc.machine.core.dramCyclesPerLine = v;
        }));

    // ----------------------------------------------------------------
    // layout.* — security byte insertion (InsertionPolicy +
    // PolicyParams + the layout randomization seed).
    // ----------------------------------------------------------------
    // Choices derive from policyName() (plus the historical CLI
    // spelling "fixed"), so the vocabulary cannot drift from the
    // parsePolicyName table in src/layout/policy.cc.
    specs_.push_back(enumKnob(
        "layout.policy",
        {policyName(InsertionPolicy::None),
         policyName(InsertionPolicy::Opportunistic),
         policyName(InsertionPolicy::Full),
         policyName(InsertionPolicy::Intelligent), "fixed",
         policyName(InsertionPolicy::FullFixed)},
        "--policy", "security byte insertion policy (Listing 1)",
        [](const RunConfig &rc) { return policyName(rc.policy); },
        [](RunConfig &rc, const std::string &name) {
            // value() (not *) so a choices/parse table mismatch is a
            // loud exception instead of undefined behaviour.
            rc.policy = parsePolicyName(name).value();
        }));
    specs_.push_back(uintKnob(
        "layout.min_span", 1, 64, "",
        "minimum random security span size in bytes",
        [](const RunConfig &rc) { return rc.policyParams.minSpan; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.policyParams.minSpan = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "layout.max_span", 1, 64, "",
        "maximum random security span size in bytes (Section 8.2 "
        "sweeps 3/5/7)",
        [](const RunConfig &rc) { return rc.policyParams.maxSpan; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.policyParams.maxSpan = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "layout.fixed_span", 1, 64, "",
        "span size for the full-fixed policy (Figure 4)",
        [](const RunConfig &rc) { return rc.policyParams.fixedSpan; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.policyParams.fixedSpan = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "layout.seed", 0, std::numeric_limits<std::uint64_t>::max(),
        "", "layout randomization seed (one seed = one compiled binary)",
        [](const RunConfig &rc) { return rc.layoutSeed; },
        [](RunConfig &rc, std::uint64_t v) { rc.layoutSeed = v; }));

    // ----------------------------------------------------------------
    // heap.* / stack.* — allocator behaviour (HeapParams/StackParams).
    // ----------------------------------------------------------------
    specs_.push_back(uintKnob(
        "heap.guard_bytes", 0, 4096, "",
        "inter-object guard bytes on each side of a heap allocation",
        [](const RunConfig &rc) { return rc.heap.guardBytes; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.heap.guardBytes = static_cast<std::size_t>(v);
        }));
    specs_.push_back(doubleKnob(
        "heap.quarantine_fraction", 0.0, 1.0,
        "freed-block quarantine as a fraction of peak heap (0 "
        "disables)",
        [](const RunConfig &rc) { return rc.heap.quarantineFraction; },
        [](RunConfig &rc, double v) {
            rc.heap.quarantineFraction = v;
        }));
    specs_.push_back(boolKnob(
        "heap.use_cform",
        "issue CFORM instructions for heap security bytes",
        [](const RunConfig &rc) { return rc.heap.useCform; },
        [](RunConfig &rc, bool v) { rc.heap.useCform = v; }));
    specs_.push_back(boolKnob(
        "heap.non_temporal_cform",
        "use the streaming (non-temporal) CFORM variant on the heap",
        [](const RunConfig &rc) { return rc.heap.nonTemporalCform; },
        [](RunConfig &rc, bool v) { rc.heap.nonTemporalCform = v; }));
    specs_.push_back(boolKnob(
        "stack.use_cform",
        "issue CFORM instructions for stack-local security bytes",
        [](const RunConfig &rc) { return rc.stack.useCform; },
        [](RunConfig &rc, bool v) { rc.stack.useCform = v; }));

    // ----------------------------------------------------------------
    // run.* — experiment control.
    // ----------------------------------------------------------------
    specs_.push_back(doubleKnob(
        "run.scale", 0.001, 100.0,
        "workload iteration multiplier (1.0 = full bench size)",
        [](const RunConfig &rc) { return rc.scale; },
        [](RunConfig &rc, double v) { rc.scale = v; }));
    specs_.push_back(uintKnob(
        "run.kernel_seed", 0,
        std::numeric_limits<std::uint64_t>::max(), "",
        "kernel work seed (keep fixed across configurations)",
        [](const RunConfig &rc) { return rc.kernelSeed; },
        [](RunConfig &rc, std::uint64_t v) { rc.kernelSeed = v; }));

    // ----------------------------------------------------------------
    // workload.* — synthetic workload generators (SynthParams; only
    // the synthetic benchmarks — the classic synthSuite() five (zipf,
    // stream, stackchurn, ring, attackmix) and the adversarialSuite()
    // replacement stressors (thrash, scan, mixed) — consume these).
    // ----------------------------------------------------------------
    specs_.push_back(uintKnob(
        "workload.ops", 1, 1u << 30, "",
        "base generator operation count (scaled by run.scale)",
        [](const RunConfig &rc) { return rc.synth.ops; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.ops = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.footprint_kb", 4, 1u << 20, "",
        "working set of the address-stream workloads in KB",
        [](const RunConfig &rc) { return rc.synth.footprintKb; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.footprintKb = static_cast<std::size_t>(v);
        }));
    specs_.push_back(doubleKnob(
        "workload.zipf_alpha", 0.0, 4.0,
        "zipfian skew: 0 = uniform, 1 = classic zipf, larger = hotter",
        [](const RunConfig &rc) { return rc.synth.zipfAlpha; },
        [](RunConfig &rc, double v) { rc.synth.zipfAlpha = v; }));
    specs_.push_back(uintKnob(
        "workload.stride_bytes", 8, 4096, "",
        "element stride in bytes (rounded up to a multiple of 8)",
        [](const RunConfig &rc) { return rc.synth.strideBytes; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.strideBytes = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.ring_slots", 2, 1u << 20, "",
        "producer-consumer ring: number of slots",
        [](const RunConfig &rc) { return rc.synth.ringSlots; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.ringSlots = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.ring_burst", 1, 256, "",
        "producer-consumer ring: slots written/read per burst",
        [](const RunConfig &rc) { return rc.synth.ringBurst; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.ringBurst = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.stack_depth", 1, 256, "",
        "stack-churn call tree: maximum frame depth",
        [](const RunConfig &rc) { return rc.synth.stackDepth; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.stackDepth = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.stack_fanout", 1, 64, "",
        "stack-churn call tree: branching factor (pop depth spread)",
        [](const RunConfig &rc) { return rc.synth.stackFanout; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.stackFanout = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.attack_period", 8, 1u << 20, "",
        "attack-mix: benign ops between attack probes",
        [](const RunConfig &rc) { return rc.synth.attackPeriod; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.attackPeriod = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.seed", 0,
        std::numeric_limits<std::uint64_t>::max(), "",
        "generator stream seed (independent of the layout seed)",
        [](const RunConfig &rc) { return rc.synth.seed; },
        [](RunConfig &rc, std::uint64_t v) { rc.synth.seed = v; }));
    specs_.push_back(uintKnob(
        "workload.core_seed_stride", 0,
        std::numeric_limits<std::uint64_t>::max(), "",
        "multi-core fan-out: core c's stream seed is workload.seed + "
        "stride * c (0 = every core replays the identical stream)",
        [](const RunConfig &rc) { return rc.synth.coreSeedStride; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.coreSeedStride = v;
        }));
    specs_.push_back(uintKnob(
        "workload.protect_lines", 0, 4096, "",
        "multi-core fan-out: CFORM-protect this many of the "
        "workload's hottest shared lines before the streams start "
        "(0 disables the preamble)",
        [](const RunConfig &rc) { return rc.synth.protectLines; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.protectLines = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.thrash_kb", 64, 1u << 20, "",
        "thrash: cyclic working set in KB (default just over the 2MB "
        "LLC, the LRU worst case)",
        [](const RunConfig &rc) { return rc.synth.thrashKb; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.thrashKb = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.hot_kb", 4, 1u << 20, "",
        "scan/mixed: reused hot working set in KB",
        [](const RunConfig &rc) { return rc.synth.hotKb; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.hotKb = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.scan_kb", 4, 1u << 20, "",
        "scan/mixed: one-shot streaming episode size in KB (fresh "
        "lines every episode, never revisited)",
        [](const RunConfig &rc) { return rc.synth.scanKb; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.scanKb = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "workload.scan_period", 1, 1u << 20, "",
        "scan/mixed: hot-set operations between scan episodes",
        [](const RunConfig &rc) { return rc.synth.scanPeriod; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.synth.scanPeriod = static_cast<std::size_t>(v);
        }));

    // ----------------------------------------------------------------
    // fleet.* — multi-tenant serving engine (FleetParams; only
    // `califorms fleet` and the fleet_throughput bench consume these).
    // ----------------------------------------------------------------
    specs_.push_back(uintKnob(
        "fleet.shards", 0, 256, "",
        "replay shards the tenant list is split across the pool into "
        "(0 = one shard per tenant); never changes any counter",
        [](const RunConfig &rc) { return rc.fleet.shards; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.fleet.shards = static_cast<unsigned>(v);
        }));
    specs_.push_back(uintKnob(
        "fleet.batch_ops", 1, 1u << 16, "",
        "ops decoded per batch in the SoA replay hot loop (one bulk "
        "TraceReader::fill and one stat flush per batch)",
        [](const RunConfig &rc) { return rc.fleet.batchOps; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.fleet.batchOps = static_cast<std::size_t>(v);
        }));
    specs_.push_back(uintKnob(
        "fleet.tenant_seed_stride", 0,
        std::numeric_limits<std::uint64_t>::max(), "",
        "tenant t's generator seed is workload.seed + stride * t "
        "unless the tenant overlay pins workload.seed (0 = identical "
        "streams for same-workload tenants)",
        [](const RunConfig &rc) { return rc.fleet.tenantSeedStride; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.fleet.tenantSeedStride = v;
        }));

    // ----------------------------------------------------------------
    // attack.* — red-team scenario suite (AttackParams; only the
    // attack replay benchmark and `califorms attack` consume these).
    // ----------------------------------------------------------------
    specs_.push_back(enumKnob(
        "attack.scenario", attackScenarioNames(), "",
        "which registered attack scenario the replay runs",
        [](const RunConfig &rc) { return rc.attack.scenario; },
        [](RunConfig &rc, const std::string &v) {
            rc.attack.scenario = v;
        }));
    specs_.push_back(enumKnob(
        "attack.victim", attackVictimNames(), "",
        "victim struct from the named corpus (security/victims)",
        [](const RunConfig &rc) { return rc.attack.victim; },
        [](RunConfig &rc, const std::string &v) {
            rc.attack.victim = v;
        }));
    specs_.push_back(uintKnob(
        "attack.seeds", 1, 1u << 16, "",
        "independent attacker/layout trials per run unit",
        [](const RunConfig &rc) { return rc.attack.seeds; },
        [](RunConfig &rc, std::uint64_t v) { rc.attack.seeds = v; }));
    specs_.push_back(uintKnob(
        "attack.objects", 1, 1u << 16, "--objects",
        "victim heap population for scan/probe",
        [](const RunConfig &rc) { return rc.attack.objects; },
        [](RunConfig &rc, std::uint64_t v) { rc.attack.objects = v; }));
    specs_.push_back(uintKnob(
        "attack.crash_budget", 0, 1u << 20, "--crashes",
        "respawns the attacker may consume before giving up",
        [](const RunConfig &rc) { return rc.attack.crashBudget; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.attack.crashBudget = v;
        }));
    specs_.push_back(uintKnob(
        "attack.probe_budget", 1, 1u << 24, "",
        "probe budget for the blind random-probe scenario",
        [](const RunConfig &rc) { return rc.attack.probeBudget; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.attack.probeBudget = v;
        }));
    specs_.push_back(uintKnob(
        "attack.spray_count", 2, 1u << 12, "",
        "attacker allocations sprayed around the victim (heapspray)",
        [](const RunConfig &rc) { return rc.attack.sprayCount; },
        [](RunConfig &rc, std::uint64_t v) {
            rc.attack.sprayCount = v;
        }));
    specs_.push_back(uintKnob(
        "attack.uaf_churn", 1, 1u << 16, "",
        "allocate/free rounds pushing freed chunks through the "
        "quarantine (uaf)",
        [](const RunConfig &rc) { return rc.attack.uafChurn; },
        [](RunConfig &rc, std::uint64_t v) { rc.attack.uafChurn = v; }));
    specs_.push_back(boolKnob(
        "attack.brop_rerandomize",
        "re-randomize the victim layout on every BROP respawn (the "
        "paper's mitigation)",
        [](const RunConfig &rc) { return rc.attack.bropRerandomize; },
        [](RunConfig &rc, bool v) { rc.attack.bropRerandomize = v; }));

    // Defaults are captured from a default RunConfig through each
    // spec's own accessor: the registry cannot disagree with the
    // params structs about what the Table 3 machine is.
    const RunConfig defaults{};
    for (ParamSpec &spec : specs_)
        spec.def = spec.read(defaults);
}

const ParamSpec *
ParamRegistry::find(const std::string &key) const
{
    for (const ParamSpec &spec : specs_)
        if (spec.key == key)
            return &spec;
    return nullptr;
}

const ParamSpec *
ParamRegistry::findFlag(const std::string &flag) const
{
    if (flag.empty())
        return nullptr;
    for (const ParamSpec &spec : specs_)
        if (spec.flag == flag)
            return &spec;
    return nullptr;
}

std::optional<ParamValue>
ParamRegistry::parse(const ParamSpec &spec, const std::string &text,
                     std::string &error) const
{
    switch (spec.type) {
    case ParamType::UInt: {
        const auto v = parseU64(text);
        if (!v || *v < spec.minU || *v > spec.maxU) {
            error = spec.key + " expects an integer in [" +
                    std::to_string(spec.minU) + ", " +
                    std::to_string(spec.maxU) + "], got '" + text +
                    "'";
            return std::nullopt;
        }
        return ParamValue{*v};
    }
    case ParamType::Double: {
        const auto v = parseDouble(text);
        if (!v || *v < spec.minD || *v > spec.maxD) {
            error = spec.key + " expects a number in [" +
                    jsonNumber(spec.minD) + ", " +
                    jsonNumber(spec.maxD) + "], got '" + text +
                    "'";
            return std::nullopt;
        }
        return ParamValue{*v};
    }
    case ParamType::Bool: {
        const auto v = parseBool(text);
        if (!v) {
            error = spec.key + " expects true/false, got '" + text +
                    "'";
            return std::nullopt;
        }
        return ParamValue{*v};
    }
    case ParamType::Enum: {
        for (const std::string &choice : spec.choices)
            if (text == choice)
                return ParamValue{text};
        error = spec.key + " expects one of {";
        for (std::size_t i = 0; i < spec.choices.size(); ++i)
            error += (i ? ", " : "") + spec.choices[i];
        error += "}, got '" + text + "'";
        return std::nullopt;
    }
    }
    error = "unreachable";
    return std::nullopt;
}

std::string
ParamRegistry::schemaJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"califorms-config/v1\",\n"
       << "  \"params\": [\n";
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const ParamSpec &spec = specs_[i];
        os << "    {\"key\": " << jsonString(spec.key)
           << ", \"type\": \"" << paramTypeName(spec.type) << "\""
           << ", \"default\": ";
        if (spec.type == ParamType::Enum)
            os << jsonString(renderValue(spec.def));
        else
            os << renderValue(spec.def);
        if (spec.type == ParamType::UInt)
            os << ", \"min\": " << spec.minU
               << ", \"max\": " << spec.maxU;
        else if (spec.type == ParamType::Double)
            os << ", \"min\": " << jsonNumber(spec.minD)
               << ", \"max\": " << jsonNumber(spec.maxD);
        if (spec.type == ParamType::Enum) {
            os << ", \"choices\": [";
            for (std::size_t c = 0; c < spec.choices.size(); ++c)
                os << (c ? ", " : "") << jsonString(spec.choices[c]);
            os << "]";
        }
        os << ",\n     \"flag\": "
           << (spec.flag.empty() ? std::string("null")
                                 : jsonString(spec.flag))
           << ", \"doc\": " << jsonString(spec.doc) << "}"
           << (i + 1 < specs_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace califorms::config
