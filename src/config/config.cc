#include "config/config.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace califorms::config
{

namespace
{

std::string
trim(const std::string &s)
{
    const std::size_t first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const std::size_t last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

} // namespace

std::optional<std::string>
Config::set(const std::string &key, const std::string &text)
{
    const ParamRegistry &registry = ParamRegistry::instance();
    const ParamSpec *spec = registry.find(key);
    if (!spec)
        return "unknown config key '" + key +
               "' (see 'califorms config --schema' for the full set)";
    std::string error;
    const auto value = registry.parse(*spec, text, error);
    if (!value)
        return error;
    values_[key] = *value;
    return std::nullopt;
}

std::optional<std::string>
Config::setPair(const std::string &pair)
{
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0)
        return "expected key=value, got '" + pair + "'";
    return set(trim(pair.substr(0, eq)), trim(pair.substr(eq + 1)));
}

std::optional<std::string>
Config::loadText(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return "line " + std::to_string(lineno) +
                   ": expected 'key = value', got '" + line + "'";
        if (const auto error =
                set(trim(line.substr(0, eq)), trim(line.substr(eq + 1))))
            return "line " + std::to_string(lineno) + ": " + *error;
    }
    return std::nullopt;
}

std::optional<std::string>
Config::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open config file '" + path + "'";
    std::ostringstream ss;
    ss << in.rdbuf();
    if (const auto error = loadText(ss.str()))
        return path + ": " + *error;
    return std::nullopt;
}

bool
Config::isSet(const std::string &key) const
{
    return values_.count(key) != 0;
}

const ParamValue *
Config::get(const std::string &key) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
}

ParamValue
Config::resolved(const std::string &key) const
{
    if (const ParamValue *value = get(key))
        return *value;
    const ParamSpec *spec = ParamRegistry::instance().find(key);
    if (!spec)
        throw std::out_of_range("unknown config key " + key);
    return spec->def;
}

void
Config::applyTo(RunConfig &rc) const
{
    for (const ParamSpec &spec : ParamRegistry::instance().specs())
        if (const ParamValue *value = get(spec.key))
            spec.apply(rc, *value);
}

RunConfig
Config::makeRunConfig() const
{
    RunConfig rc;
    applyTo(rc);
    return rc;
}

std::string
Config::serialize(bool only_non_default) const
{
    std::ostringstream os;
    std::string domain;
    for (const ParamSpec &spec : ParamRegistry::instance().specs()) {
        const bool explicit_set = isSet(spec.key);
        if (only_non_default && !explicit_set)
            continue;
        const std::string prefix =
            spec.key.substr(0, spec.key.find('.'));
        if (prefix != domain) {
            if (!domain.empty())
                os << "\n";
            domain = prefix;
        }
        os << spec.key << " = "
           << renderValue(explicit_set ? *get(spec.key) : spec.def);
        if (explicit_set && !only_non_default)
            os << "  # set";
        os << "\n";
    }
    return os.str();
}

std::vector<std::pair<std::string, std::string>>
Config::entries() const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const ParamSpec &spec : ParamRegistry::instance().specs())
        if (const ParamValue *value = get(spec.key))
            out.emplace_back(spec.key, renderValue(*value));
    return out;
}

Config
Config::fromRunConfig(const RunConfig &rc)
{
    Config cfg;
    for (const ParamSpec &spec : ParamRegistry::instance().specs()) {
        ParamValue value = spec.read(rc);
        if (!(value == spec.def))
            cfg.values_[spec.key] = std::move(value);
    }
    return cfg;
}

CliArg
parseCliArg(Config &cfg, const std::string &arg, int argc, char **argv,
            int &i, const char *prog)
{
    const auto value_of = [&](const char *&out) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s requires a value\n", prog,
                         arg.c_str());
            return false;
        }
        out = argv[++i];
        return true;
    };

    if (arg == "--set") {
        const char *pair = nullptr;
        if (!value_of(pair))
            return CliArg::Error;
        if (const auto error = cfg.setPair(pair)) {
            std::fprintf(stderr, "%s: --set: %s\n", prog,
                         error->c_str());
            return CliArg::Error;
        }
        return CliArg::Consumed;
    }
    if (arg == "--config") {
        const char *path = nullptr;
        if (!value_of(path))
            return CliArg::Error;
        if (const auto error = cfg.loadFile(path)) {
            std::fprintf(stderr, "%s: --config: %s\n", prog,
                         error->c_str());
            return CliArg::Error;
        }
        return CliArg::Consumed;
    }
    const ParamSpec *spec = ParamRegistry::instance().findFlag(arg);
    if (!spec)
        return CliArg::NotMine;
    const char *text = nullptr;
    if (!value_of(text))
        return CliArg::Error;
    if (const auto error = cfg.set(spec->key, text)) {
        std::fprintf(stderr, "%s: %s: %s\n", prog, arg.c_str(),
                     error->c_str());
        return CliArg::Error;
    }
    return CliArg::Consumed;
}

const std::string &
cliUsage()
{
    static const std::string usage = [] {
        std::string out =
            "  --set key=value override any registered knob "
            "(repeatable; run\n"
            "                  'califorms config --schema' for the "
            "full key set)\n"
            "  --config FILE   load 'key = value' assignments from "
            "FILE";
        for (const ParamSpec &spec :
             ParamRegistry::instance().specs()) {
            if (spec.flag.empty())
                continue;
            std::string head =
                "  " + spec.flag +
                (spec.type == ParamType::Enum ? " F" : " N");
            if (head.size() < 18)
                head.resize(18, ' ');
            out += "\n" + head + spec.doc;
            if (spec.type == ParamType::Enum) {
                out += ": ";
                for (std::size_t c = 0; c < spec.choices.size(); ++c)
                    out += (c ? "|" : "") + spec.choices[c];
            }
            out += " [= " + renderValue(spec.def) + "]";
        }
        return out;
    }();
    return usage;
}

} // namespace califorms::config
