/**
 * @file config.hh
 * The Config object: an ordered set of explicit `key = value`
 * assignments over the ParamRegistry, validated at set() time. One
 * Config is the single configuration carrier of the whole stack:
 *
 *  - the CLI subcommands fill one from `--set key=value`, `--config
 *    FILE`, and the legacy alias flags (parseCliArg below);
 *  - the bench harnesses fill one the same way (bench/common.hh);
 *  - applyTo() materializes it onto a RunConfig — only explicitly set
 *    keys are written, so a Config composes with per-command and
 *    per-harness defaults, and an empty Config is a strict no-op
 *    (the default Config materializes the pre-registry machine
 *    bit for bit);
 *  - serialize() emits the full resolved configuration (or only the
 *    non-default part) as a reloadable config file;
 *  - fromRunConfig() recovers the explicit-set view of an existing
 *    RunConfig by diffing it against the registry defaults.
 *
 * Config file format: one `key = value` per line; '#' starts a
 * comment (full-line or trailing); blank lines are ignored; on
 * duplicate keys the last assignment wins, same as repeated --set
 * flags.
 */

#ifndef CALIFORMS_CONFIG_CONFIG_HH
#define CALIFORMS_CONFIG_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "config/registry.hh"

namespace califorms::config
{

class Config
{
  public:
    /** Set @p key from text, validating against the registry. Returns
     *  a diagnostic on failure (unknown key, bad value, out of
     *  bounds), std::nullopt on success. */
    std::optional<std::string> set(const std::string &key,
                                   const std::string &text);

    /** Set from one "key=value" token (the --set argument shape). */
    std::optional<std::string> setPair(const std::string &pair);

    /** Parse config-file text; diagnostics carry the line number. */
    std::optional<std::string> loadText(const std::string &text);

    /** Load a `key = value` file from disk. */
    std::optional<std::string> loadFile(const std::string &path);

    bool isSet(const std::string &key) const;

    /** The explicitly set value of @p key, or nullptr. */
    const ParamValue *get(const std::string &key) const;

    /** The resolved value of @p key: the explicit set if present,
     *  the registry default otherwise (throws on unknown key). */
    ParamValue resolved(const std::string &key) const;

    /** Write every explicitly set key into @p rc (registry order). */
    void applyTo(RunConfig &rc) const;

    /** Materialize a RunConfig: defaults plus the explicit sets. */
    RunConfig makeRunConfig() const;

    /**
     * Render as a reloadable config file: every registered key in
     * registration order with its resolved value; explicit sets are
     * marked with a trailing "# set" comment. @p only_non_default
     * restricts the dump to the explicitly set keys.
     */
    std::string serialize(bool only_non_default = false) const;

    /** The explicit sets as (key, rendered value) pairs, registry
     *  order. */
    std::vector<std::pair<std::string, std::string>> entries() const;

    /** Number of explicitly set keys. */
    std::size_t setCount() const { return values_.size(); }

    /**
     * The explicit-set view of an existing RunConfig: every key whose
     * value differs from the registry default. (Keys equal to their
     * default are not marked set — applying the result to a default
     * RunConfig reproduces @p rc exactly.)
     */
    static Config fromRunConfig(const RunConfig &rc);

  private:
    std::map<std::string, ParamValue> values_;
};

/** Result of offering one CLI argument to parseCliArg. */
enum class CliArg
{
    NotMine,  //!< not a config argument; caller handles it
    Consumed, //!< applied (possibly consuming the following value)
    Error,    //!< diagnostic already printed to stderr
};

/**
 * Recognize and apply one registry-backed CLI argument: `--set
 * key=value`, `--config FILE`, or any legacy alias flag registered in
 * the ParamRegistry (--levels, --l2-kb, --llc-kb, --l2-lat,
 * --llc-lat, --fill-conv, --spill-conv, --wb-queue, --l1, --policy).
 * @p i is advanced past consumed value arguments; diagnostics are
 * printed to stderr prefixed with @p prog.
 */
CliArg parseCliArg(Config &cfg, const std::string &arg, int argc,
                   char **argv, int &i, const char *prog);

/** The usage lines for the shared configuration arguments: --set,
 *  --config, and every registered legacy alias flag (rendered from
 *  the registry, so usage text cannot drift from the knob set). */
const std::string &cliUsage();

} // namespace califorms::config

#endif // CALIFORMS_CONFIG_CONFIG_HH
