#include "vlsi/designs.hh"

namespace califorms
{

namespace
{

/**
 * Common L1 pipeline around the arrays: address decode, way/line
 * select and the output aligner. The data array dominates everything
 * (the paper reports ~98% of area in SRAM).
 */
CircuitCost
l1CorePipeline(const CircuitBuilder &b, const L1Geometry &g)
{
    CircuitCost data = b.sram(g.dataBits(), false, 0.85);
    CircuitCost tag = b.sram(g.tagArrayBits(), false, 0.9);
    CircuitCost arrays = data.alongside(tag);

    CircuitCost addr_decode = b.logic(600, 2, 0.5);
    CircuitCost aligner = b.logic(2800, 1, 0.5);
    CircuitCost compare = b.comparator(g.tagBits, 0.5);

    // Tag compare runs alongside the data access; the aligner follows.
    return addr_decode.then(arrays.alongside(compare)).then(aligner);
}

/** Apply the fixed interconnect/setup floor to a path. */
CircuitCost
closePath(const CircuitBuilder &b, CircuitCost c)
{
    c.delayNs += b.library().fixedDelayNs;
    return c;
}

} // namespace

CircuitCost
synthesizeL1(const CircuitBuilder &b, const L1Geometry &g,
             L1Variant variant)
{
    CircuitCost core = l1CorePipeline(b, g);

    switch (variant) {
    case L1Variant::Baseline:
        return closePath(b, core);

    case L1Variant::Califorms8B: {
        // Dedicated metadata array, one bit per byte (Figure 5). The
        // lookup happens in parallel with the tag access (Figure 6); only
        // the Califorms checker's gating lands after the data.
        const std::size_t meta_bits = g.lines() * g.lineBytes;
        CircuitCost meta = b.sram(meta_bits, true, 0.11);
        CircuitCost checker = b.logic(220, 1, 0.3);
        CircuitCost c = core.alongside(meta).then(checker);
        return closePath(b, c);
      }

    case L1Variant::Califorms4B: {
        // 4 bits per 8B chunk (Figure 14). The bit vector lives in a
        // security byte of the chunk, so the hit path must read the
        // metadata, locate the holder byte, extract it from the data
        // output and only then run the checker — a serial tail.
        const std::size_t meta_bits = g.lines() * 4 * 8;
        CircuitCost meta = b.sram(meta_bits, true, 0.11);
        CircuitCost locate = b.decoder(3, 0.3);           // holder index
        CircuitCost extract = b.mux(8, 8, 0.3);           // pull the byte
        CircuitCost decode = b.logic(8 * 64, 2, 0.3);     // expand vector
        CircuitCost checker = b.logic(220, 2, 0.3);
        CircuitCost tail =
            locate.then(extract).then(decode).then(checker);
        CircuitCost c = core.alongside(meta).then(tail);
        return closePath(b, c);
      }

    case L1Variant::Califorms1B: {
        // 1 bit per chunk (Figure 15): the holder byte is always the
        // chunk header, so the locate step disappears and the tail is
        // shorter — cheaper than 4B in both area and delay (Table 7).
        const std::size_t meta_bits = g.lines() * 8;
        CircuitCost meta = b.sram(meta_bits, true, 0.11);
        CircuitCost extract = b.logic(8 * 24, 1, 0.3);    // fixed byte
        CircuitCost decode = b.logic(8 * 48, 2, 0.3);
        CircuitCost checker = b.logic(220, 2, 0.3);
        CircuitCost tail = extract.then(decode).then(checker);
        CircuitCost c = core.alongside(meta).then(tail);
        return closePath(b, c);
      }
    }
    return CircuitCost{};
}

CircuitCost
synthesizeFillModule(const CircuitBuilder &b)
{
    // Figure 9, left to right. The count-code comparators and the four
    // address decoders run first; the sentinel comparators for bytes
    // 4..63 run in parallel; byte restoration and zero gating follow.
    CircuitCost code_cmp =
        b.comparator(2, 0.4).alongside(b.comparator(2, 0.4))
            .alongside(b.comparator(2, 0.4));
    CircuitCost addr_decoders = b.decoder(6, 0.4)
                                    .alongside(b.decoder(6, 0.4))
                                    .alongside(b.decoder(6, 0.4))
                                    .alongside(b.decoder(6, 0.4));

    // 60 six-bit sentinel comparators over bytes 4..63 (parallel bank).
    CircuitCost sentinel_bank = b.comparator(6, 0.4);
    for (int i = 1; i < 60; ++i)
        sentinel_bank = sentinel_bank.alongside(b.comparator(6, 0.4));

    // Restore the relocated header bytes: four byte-wide 64:1 muxes.
    CircuitCost restore = b.mux(64, 8, 0.35);
    for (int i = 1; i < 4; ++i)
        restore = restore.alongside(b.mux(64, 8, 0.35));

    // Metadata merge and the zero gating of security byte data slots.
    CircuitCost merge = b.orReduce(64, 0.4).then(b.logic(500, 1, 0.4));
    CircuitCost zero_gate = b.logic(64 * 8, 1, 0.35);

    // The metadata path (merge) and the data restoration path (restore)
    // are parallel in Figure 9; only the zero gating consumes both.
    CircuitCost front = code_cmp.then(addr_decoders)
                            .alongside(sentinel_bank);
    return front.then(merge.alongside(restore)).then(zero_gate);
}

CircuitCost
synthesizeSpillModule(const CircuitBuilder &b)
{
    // Figure 8. Sentinel search path: 64 six-to-64 decoders (one per
    // byte) -> used-values OR plane -> find-first-zero.
    CircuitCost decoders = b.decoder(6, 0.35);
    for (int i = 1; i < 64; ++i)
        decoders = decoders.alongside(b.decoder(6, 0.35));
    CircuitCost or_plane = b.orReduce(64, 0.35);
    for (int i = 1; i < 64; ++i)
        or_plane = or_plane.alongside(b.orReduce(64, 0.35));
    CircuitCost sentinel_path =
        decoders.then(or_plane).then(b.findIndex64(0.35));

    // Security byte locator: four *successive* find-index blocks, each
    // masking out the hit of the previous one (the paper notes this
    // chain can be pipelined into four stages; we synthesize the single
    // cycle version, hence the long path).
    CircuitCost locate = b.findIndex64(0.35).then(b.logic(130, 2, 0.35));
    for (int i = 1; i < 4; ++i)
        locate = locate.then(b.findIndex64(0.35))
                     .then(b.logic(130, 2, 0.35));

    // Crossbar & combinational logic (Figure 8): relocate the data of
    // the first four bytes, mark remaining security bytes with the
    // sentinel, assemble the header.
    CircuitCost crossbar = b.mux(64, 8, 0.3);
    for (int i = 1; i < 4; ++i)
        crossbar = crossbar.alongside(b.mux(64, 8, 0.3));
    CircuitCost sentinel_mark = b.logic(64 * 8 * 2, 1, 0.3);
    CircuitCost header_pack = b.logic(400, 3, 0.35);
    CircuitCost merge = b.logic(800, 2, 0.3);

    // Line-in / line-out staging registers (512 bits each).
    CircuitCost staging =
        b.registerStage(512, 0.3).alongside(b.registerStage(512, 0.3));

    CircuitCost path = sentinel_path.alongside(locate)
                           .then(crossbar.alongside(sentinel_mark))
                           .then(header_pack)
                           .then(merge);
    return path.alongside(staging);
}

std::vector<SynthesisRow>
synthesizeAll(const CircuitBuilder &b, const L1Geometry &g)
{
    std::vector<SynthesisRow> rows;

    SynthesisRow baseline;
    baseline.name = "Baseline";
    baseline.main = synthesizeL1(b, g, L1Variant::Baseline);
    rows.push_back(baseline);

    const CircuitCost fill = [&] {
        CircuitCost c = synthesizeFillModule(b);
        c.delayNs += b.library().fixedDelayNs;
        return c;
    }();
    const CircuitCost spill = [&] {
        CircuitCost c = synthesizeSpillModule(b);
        c.delayNs += b.library().fixedDelayNs;
        return c;
    }();

    const struct
    {
        const char *name;
        L1Variant variant;
    } variants[] = {
        {"Califorms-8B", L1Variant::Califorms8B},
        {"Califorms-4B", L1Variant::Califorms4B},
        {"Califorms-1B", L1Variant::Califorms1B},
    };
    for (const auto &v : variants) {
        SynthesisRow row;
        row.name = v.name;
        row.main = synthesizeL1(b, g, v.variant);
        row.fill = fill;
        row.spill = spill;
        row.hasFillSpill = true;
        rows.push_back(row);
    }
    return rows;
}

} // namespace califorms
