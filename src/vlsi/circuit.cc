#include "vlsi/circuit.hh"

#include <algorithm>
#include <cmath>

namespace califorms
{

CircuitCost
CircuitCost::then(const CircuitCost &next) const
{
    return CircuitCost{areaGe + next.areaGe, delayNs + next.delayNs,
                       powerMw + next.powerMw};
}

CircuitCost
CircuitCost::alongside(const CircuitCost &other) const
{
    return CircuitCost{areaGe + other.areaGe,
                       std::max(delayNs, other.delayNs),
                       powerMw + other.powerMw};
}

CircuitCost
CircuitBuilder::make(double area, unsigned levels, double activity) const
{
    CircuitCost c;
    c.areaGe = area;
    c.delayNs = static_cast<double>(levels) * lib_.levelDelayNs;
    c.powerMw = area * lib_.nwPerGe * activity;
    return c;
}

CircuitCost
CircuitBuilder::logic(double nand2_equivalents, unsigned levels,
                      double activity) const
{
    return make(nand2_equivalents * lib_.geNand2, levels, activity);
}

CircuitCost
CircuitBuilder::registerStage(unsigned bits, double activity) const
{
    return make(bits * lib_.geDff, 1, activity);
}

CircuitCost
CircuitBuilder::decoder(unsigned in_bits, double activity) const
{
    // Predecode pairs/triples then AND: 2^n output AND gates plus the
    // predecoders. Depth: predecode + 2 AND levels.
    const double outputs = std::pow(2.0, in_bits);
    const double area =
        outputs * lib_.geAndOr2 +
        in_bits * 4 * lib_.geAndOr2; // predecode
    return make(area, 3, activity);
}

CircuitCost
CircuitBuilder::findIndex64(double activity) const
{
    // Figure 8: 64 shift blocks followed by a single comparator. Each
    // shift block is a couple of gates of masking logic; the priority
    // resolution is logarithmic in depth.
    const double area = 64 * 6 * lib_.geNand2 + 50 * lib_.geNand2;
    return make(area, 12, activity);
}

CircuitCost
CircuitBuilder::comparator(unsigned bits, double activity) const
{
    // XNOR per bit plus an AND tree.
    const double area =
        bits * lib_.geXor2 + (bits - 1) * lib_.geAndOr2;
    const auto tree_levels = static_cast<unsigned>(
        std::ceil(std::log2(std::max(2u, bits))));
    return make(area, 1 + tree_levels, activity);
}

CircuitCost
CircuitBuilder::orReduce(unsigned n, double activity) const
{
    const double area = (n - 1) * lib_.geAndOr2;
    const auto levels =
        static_cast<unsigned>(std::ceil(std::log2(std::max(2u, n))));
    return make(area, levels, activity);
}

CircuitCost
CircuitBuilder::mux(unsigned inputs, unsigned width,
                    double activity) const
{
    // A tree of 2:1 muxes per output bit.
    const double area = width * (inputs - 1) * lib_.geMux2;
    const auto levels = static_cast<unsigned>(
        std::ceil(std::log2(std::max(2u, inputs))));
    return make(area, levels, activity);
}

CircuitCost
CircuitBuilder::sram(std::size_t bits, bool small_array,
                     double activity) const
{
    CircuitCost c;
    const double factor =
        small_array ? lib_.sramSmallArrayFactor : 1.0;
    c.areaGe = static_cast<double>(bits) * lib_.sramGePerBit * factor;
    // Access time grows weakly with capacity; calibrated so a 32KB
    // array lands near the paper's 1.62ns baseline including the fixed
    // interconnect floor applied by the designs layer.
    c.delayNs = 0.62 + 0.05 * std::log2(static_cast<double>(bits) /
                                        1024.0 + 1.0);
    // Only a fraction of the array switches per access.
    c.powerMw = c.areaGe * lib_.nwPerGe * 0.95 * activity;
    return c;
}

} // namespace califorms
