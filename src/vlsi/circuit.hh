/**
 * @file circuit.hh
 * Structural gate-level cost model.
 *
 * The paper synthesizes its designs with a TSMC 65nm library and the ARM
 * Artisan memory compiler (Section 8.1). We cannot run a commercial
 * flow, so this module models each circuit *structurally*: every block
 * is composed from primitive gate counts and logic depths that follow
 * the block diagrams in Figures 8 and 9, and a calibrated 65nm-class
 * library converts (gates, levels, activity) into area in gate
 * equivalents (GE), delay in ns and dynamic power in mW. Relative
 * results — which design is bigger, which path is longer, where
 * pipelining helps — follow from structure, not calibration.
 */

#ifndef CALIFORMS_VLSI_CIRCUIT_HH
#define CALIFORMS_VLSI_CIRCUIT_HH

#include <string>
#include <vector>

namespace califorms
{

/** Technology calibration constants (65nm-class). */
struct GateLibrary
{
    double geNand2 = 1.0;    //!< NAND2 is 1 GE by definition
    double geInv = 0.67;
    double geAndOr2 = 1.33;
    double geXor2 = 2.33;
    double geMux2 = 2.33;
    double geDff = 4.67;

    double levelDelayNs = 0.075; //!< average logic level incl. wire
    double fixedDelayNs = 0.5;   //!< setup + interconnect floor per path

    double nwPerGe = 56.0e-6;    //!< mW per GE at full activity, 2GHz

    double sramGePerBit = 1.26;  //!< large array density
    /** Small arrays pay more overhead per bit (decoders, sense amps
     *  amortized over fewer columns). */
    double sramSmallArrayFactor = 1.5;
};

/** Area/delay/power summary of a circuit block. */
struct CircuitCost
{
    double areaGe = 0.0;
    double delayNs = 0.0; //!< critical path through the block
    double powerMw = 0.0;

    /** Blocks in sequence: delays add. */
    CircuitCost then(const CircuitCost &next) const;
    /** Blocks side by side: the slower path dominates. */
    CircuitCost alongside(const CircuitCost &other) const;
};

/** Composable builder of primitive blocks. */
class CircuitBuilder
{
  public:
    explicit CircuitBuilder(GateLibrary lib = GateLibrary{}) : lib_(lib) {}

    const GateLibrary &library() const { return lib_; }

    /** Generic combinational block from gate mix and depth. */
    CircuitCost logic(double nand2_equivalents, unsigned levels,
                      double activity = 0.4) const;

    /** Register stage of @p bits flops. */
    CircuitCost registerStage(unsigned bits, double activity = 0.4) const;

    /** n-to-2^n one-hot decoder (e.g. the 6-to-64 decoders, Figure 8). */
    CircuitCost decoder(unsigned in_bits, double activity = 0.4) const;

    /**
     * Find-index block (Figure 8): 64 shift blocks followed by a single
     * comparator, returning the index of the first 0/1 in a 64-bit
     * vector.
     */
    CircuitCost findIndex64(double activity = 0.4) const;

    /** b-bit equality comparator (the blue == blocks of Figure 9). */
    CircuitCost comparator(unsigned bits, double activity = 0.4) const;

    /** OR-reduction of @p n single-bit inputs. */
    CircuitCost orReduce(unsigned n, double activity = 0.4) const;

    /** w-wide n-to-1 multiplexer (byte steering / crossbars). */
    CircuitCost mux(unsigned inputs, unsigned width,
                    double activity = 0.4) const;

    /** SRAM macro of @p bits. Delay models the full access. */
    CircuitCost sram(std::size_t bits, bool small_array,
                     double activity = 1.0) const;

  private:
    CircuitCost make(double area, unsigned levels, double activity) const;

    GateLibrary lib_;
};

/** One row of a synthesis report (Table 2 / Table 7 shape). */
struct SynthesisRow
{
    std::string name;
    CircuitCost main;   //!< whole design (e.g. the L1 cache)
    CircuitCost fill;   //!< fill module, if applicable
    CircuitCost spill;  //!< spill module, if applicable
    bool hasFillSpill = false;
};

} // namespace califorms

#endif // CALIFORMS_VLSI_CIRCUIT_HH
