/**
 * @file designs.hh
 * Concrete Califorms hardware designs composed from the circuit builder:
 * the baseline L1 data cache, the three L1 Califorms variants (8B bit
 * vector of Section 5.1, and the 4B/1B variants of Appendix A), and the
 * fill/spill conversion modules of Figures 8 and 9. These generate the
 * rows of Table 2 and Table 7.
 *
 * The modeled cache matches the paper's synthesis target: a 32KB direct
 * mapped L1 with 64B lines (512 lines), in the context of an energy
 * optimized tag-data-formatting pipeline.
 */

#ifndef CALIFORMS_VLSI_DESIGNS_HH
#define CALIFORMS_VLSI_DESIGNS_HH

#include <vector>

#include "vlsi/circuit.hh"

namespace califorms
{

/** Geometry of the synthesized L1 (Section 8.1). */
struct L1Geometry
{
    std::size_t sizeBytes = 32 * 1024;
    std::size_t lineBytes = 64;
    unsigned tagBits = 20;

    std::size_t lines() const { return sizeBytes / lineBytes; }
    std::size_t dataBits() const { return sizeBytes * 8; }
    std::size_t tagArrayBits() const { return lines() * tagBits; }
};

/** Which L1 metadata organization to synthesize. */
enum class L1Variant
{
    Baseline,    //!< no Califorms support
    Califorms8B, //!< bit vector in dedicated array (Section 5.1)
    Califorms4B, //!< bit vector in a security byte, 4b/chunk (Figure 14)
    Califorms1B, //!< bit vector in the header byte, 1b/chunk (Figure 15)
};

/** Synthesize one L1 variant (main columns of Tables 2 and 7). */
CircuitCost synthesizeL1(const CircuitBuilder &builder,
                         const L1Geometry &geometry, L1Variant variant);

/** Synthesize the fill module (Figure 9 / Algorithm 2). */
CircuitCost synthesizeFillModule(const CircuitBuilder &builder);

/** Synthesize the spill module (Figure 8 / Algorithm 1). */
CircuitCost synthesizeSpillModule(const CircuitBuilder &builder);

/** All rows of Table 7 (which subsumes Table 2's two rows). */
std::vector<SynthesisRow> synthesizeAll(const CircuitBuilder &builder,
                                        const L1Geometry &geometry);

} // namespace califorms

#endif // CALIFORMS_VLSI_DESIGNS_HH
