/**
 * @file policy_explorer.cpp
 * Command line front end for the simulator: run any benchmark under
 * any insertion policy and print the full gem5-style statistics dump.
 *
 *   policy_explorer [benchmark] [policy] [maxspan] [--no-cform]
 *                   [--extra-latency] [--scale S] [--seed N]
 *
 *   benchmark: one of the 19 SPEC CPU2006 names (default mcf), or
 *              "all" for the whole suite
 *   policy:    none | opportunistic | full | intelligent | fixed
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/stats_dump.hh"
#include "workload/runner.hh"

using namespace califorms;

namespace
{

InsertionPolicy
parsePolicy(const std::string &name)
{
    if (name == "none")
        return InsertionPolicy::None;
    if (name == "opportunistic")
        return InsertionPolicy::Opportunistic;
    if (name == "full")
        return InsertionPolicy::Full;
    if (name == "intelligent")
        return InsertionPolicy::Intelligent;
    if (name == "fixed")
        return InsertionPolicy::FullFixed;
    std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
    std::exit(1);
}

void
runOne(const SpecBenchmark &bench, const RunConfig &config)
{
    const RunResult r = runBenchmark(bench, config);
    std::printf("\n=== %s  policy=%s  cform=%s ===\n",
                bench.name.c_str(), policyName(config.policy).c_str(),
                config.heap.useCform ? "on" : "off");
    std::printf("cycles=%llu instructions=%llu ipc=%.2f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0);
    std::printf("l1 miss%%=%.2f l2 miss%%=%.2f l3 miss%%=%.2f "
                "dram lines=%llu\n",
                100.0 * r.mem.l1.missRate(),
                100.0 * r.mem.l2.missRate(),
                100.0 * r.mem.l3.missRate(),
                static_cast<unsigned long long>(r.mem.dramAccesses));
    std::printf("allocs=%llu frees=%llu cforms=%llu spills=%llu "
                "fills=%llu\n",
                static_cast<unsigned long long>(r.heap.allocs),
                static_cast<unsigned long long>(r.heap.frees),
                static_cast<unsigned long long>(r.mem.cformOps),
                static_cast<unsigned long long>(r.mem.spills),
                static_cast<unsigned long long>(r.mem.fills));
    std::printf("exceptions delivered=%zu suppressed=%zu\n",
                r.exceptionsDelivered, r.exceptionsSuppressed);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_name = "mcf";
    RunConfig config;
    config.scale = 0.5;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-cform") {
            config.withCform(false);
        } else if (arg == "--extra-latency") {
            config.machine.mem.extraL2L3Latency = 1;
        } else if (arg == "--scale" && i + 1 < argc) {
            config.scale = std::atof(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            config.layoutSeed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--help") {
            std::puts("usage: policy_explorer [benchmark|all] "
                      "[none|opportunistic|full|intelligent|fixed] "
                      "[maxspan] [--no-cform] [--extra-latency] "
                      "[--scale S] [--seed N]");
            return 0;
        } else if (positional == 0) {
            bench_name = arg;
            ++positional;
        } else if (positional == 1) {
            config.policy = parsePolicy(arg);
            ++positional;
        } else if (positional == 2) {
            config.policyParams.maxSpan =
                static_cast<std::size_t>(std::atoi(arg.c_str()));
            config.policyParams.fixedSpan = config.policyParams.maxSpan;
            ++positional;
        }
    }

    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            runOne(b, config);
        return 0;
    }
    runOne(findBenchmark(bench_name), config);
    return 0;
}
