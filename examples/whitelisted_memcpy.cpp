/**
 * @file whitelisted_memcpy.cpp
 * The Section 6.3 usability scenario: struct-to-struct assignment
 * sweeps over security bytes, so memcpy-style routines run under a
 * whitelist window (exception mask raised). The copy succeeds, the
 * destination's blacklist survives, and a rogue access afterwards is
 * still caught — "persistent tampering protection".
 */

#include <cstdio>
#include <memory>

#include "alloc/heap.hh"
#include "alloc/secure_mem.hh"
#include "layout/policy.hh"
#include "sim/machine.hh"

using namespace califorms;

int
main()
{
    std::puts("== whitelisted memcpy ==\n");

    Machine machine;
    HeapAllocator heap(machine);

    auto def = std::make_shared<StructDef>(
        "packet", std::vector<Field>{
                      {"len", Type::intType()},
                      {"flags", Type::charType()},
                      {"payload", Type::array(Type::charType(), 24)},
                      {"handler", Type::functionPointer()},
                  });
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 11);
    auto layout = std::make_shared<SecureLayout>(t.transform(*def));

    const Addr src = heap.allocate(layout);
    const Addr dst = heap.allocate(layout);

    // Fill the source's fields.
    const auto &payload = layout->fields[2];
    machine.store(src + layout->fields[0].offset, 4, 1234);
    for (unsigned i = 0; i < 24; ++i)
        machine.store(src + payload.offset + i, 1, 'p');

    // A naive byte copy without whitelisting would be killed on the
    // first security byte:
    {
        Machine strict(MachineParams{}, ExceptionUnit::Policy::Terminate);
        HeapAllocator strict_heap(strict);
        const Addr a = strict_heap.allocate(layout);
        const Addr b = strict_heap.allocate(layout);
        for (std::size_t i = 0;
             i < layout->size && !strict.exceptions().terminated(); ++i)
            strict.store(b + i, 1, strict.load(a + i, 1));
        std::printf("naive un-whitelisted copy: terminated = %s "
                    "(expect yes)\n",
                    strict.exceptions().terminated() ? "yes" : "no");
    }

    // The whitelisted version (struct assignment / memcpy):
    secureMemcpy(machine, dst, src, layout->size);
    std::printf("whitelisted copy: delivered=%zu suppressed=%zu\n",
                machine.exceptions().deliveredCount(),
                machine.exceptions().suppressedCount());
    std::printf("payload copied: dst[0]='%c' (expect 'p')\n",
                static_cast<char>(machine.load(dst + payload.offset, 1)));

    // The destination's blacklist survived the sweep:
    const Addr span_byte = dst + layout->securityBytes.front().offset;
    machine.store(span_byte, 1, 0x41);
    std::printf("post-copy rogue store into a security byte: "
                "delivered=%zu (expect 1)\n",
                machine.exceptions().deliveredCount());
    return 0;
}
