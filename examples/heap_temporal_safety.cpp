/**
 * @file heap_temporal_safety.cpp
 * Temporal memory safety on the heap (Section 6.1): clean-before-use
 * califorming, zero-on-free, and quarantining. Demonstrates that a
 * dangling pointer keeps trapping long after the free, that freed data
 * cannot be leaked, and that recycled memory comes back clean.
 */

#include <cstdio>
#include <memory>

#include "alloc/heap.hh"
#include "layout/policy.hh"
#include "sim/machine.hh"

using namespace califorms;

namespace
{

std::shared_ptr<const SecureLayout>
sessionLayout()
{
    auto def = std::make_shared<StructDef>(
        "session", std::vector<Field>{
                       {"id", Type::longType()},
                       {"key", Type::array(Type::charType(), 32)},
                       {"next", Type::pointer("session")},
                   });
    LayoutTransformer t(InsertionPolicy::Intelligent, PolicyParams{},
                        99);
    return std::make_shared<SecureLayout>(t.transform(*def));
}

} // namespace

int
main()
{
    std::puts("== heap temporal safety ==\n");

    Machine machine;
    HeapParams params;
    params.quarantineFraction = 0.5; // hold half the heap in quarantine
    HeapAllocator heap(machine, params);
    const auto layout = sessionLayout();

    // A session object holding a "secret" key.
    const Addr session = heap.allocate(layout);
    const auto &key = layout->fields[1];
    for (unsigned i = 0; i < 32; ++i)
        machine.store(session + key.offset + i, 1, 0xA0 + i);
    std::printf("session at 0x%llx, key written\n",
                static_cast<unsigned long long>(session));

    // The program frees it...
    heap.free(session);
    std::printf("freed; quarantined bytes: %zu\n",
                heap.stats().quarantinedBytes);

    // ...but a stale pointer dereferences it (use after free).
    const std::uint64_t leaked =
        machine.load(session + key.offset, 8);
    std::printf("\ndangling read of the key returned 0x%llx "
                "(expect 0: zero-on-free)\n",
                static_cast<unsigned long long>(leaked));
    std::printf("delivered exceptions: %zu (the rogue access was "
                "detected)\n",
                machine.exceptions().deliveredCount());

    // A dangling write is also caught and never commits.
    machine.store(session, 8, 0x4141414141414141ull);
    std::printf("dangling write: %zu total exceptions; byte at the "
                "target is 0x%02x (not 0x41)\n",
                machine.exceptions().deliveredCount(),
                machine.peekByte(session));

    // Allocation pressure eventually recycles the block — and it comes
    // back perfectly usable, with fresh security bytes.
    machine.exceptions().clearLogs();
    std::vector<Addr> churn;
    Addr recycled = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr a = heap.allocate(layout);
        churn.push_back(a);
        if (a == session)
            recycled = a;
        heap.free(churn.back());
    }
    std::printf("\nafter churn: %llu reuses, recycled original block: %s\n",
                static_cast<unsigned long long>(heap.stats().reuses),
                recycled ? "yes" : "not yet (still quarantined)");

    const Addr fresh = heap.allocate(layout);
    machine.store(fresh, 8, 7);
    std::printf("fresh allocation at 0x%llx usable: load=%llu, "
                "exceptions=%zu (expect 0)\n",
                static_cast<unsigned long long>(fresh),
                static_cast<unsigned long long>(machine.load(fresh, 8)),
                machine.exceptions().deliveredCount());
    return 0;
}
