/**
 * @file quickstart.cpp
 * Califorms in five minutes: define a struct, pick an insertion
 * policy, allocate it on the simulated machine, and watch a classic
 * intra-object buffer overflow get caught on the very first byte.
 *
 * This walks the exact scenario of the paper's Listing 1: struct A
 * with a 64-byte buffer sitting right before a function pointer.
 */

#include <cstdio>
#include <memory>

#include "alloc/heap.hh"
#include "layout/policy.hh"
#include "sim/machine.hh"

using namespace califorms;

int
main()
{
    std::puts("== Califorms quickstart ==\n");

    // 1. Describe the type (the compiler pass would extract this).
    //    struct A { char c; int i; char buf[64]; void (*fp)(); double d; }
    auto def = std::make_shared<StructDef>(
        "A", std::vector<Field>{
                 {"c", Type::charType()},
                 {"i", Type::intType()},
                 {"buf", Type::array(Type::charType(), 64)},
                 {"fp", Type::functionPointer()},
                 {"d", Type::doubleType()},
             });
    std::printf("struct A: %zu bytes, %zu bytes of natural padding\n",
                def->size(), def->layout().paddingBytes());

    // 2. Apply the intelligent insertion policy (Listing 1(d)):
    //    random security byte spans fence the array and the pointer.
    LayoutTransformer transformer(InsertionPolicy::Intelligent,
                                  PolicyParams{1, 7, 1}, /*seed=*/2024);
    auto layout = std::make_shared<SecureLayout>(transformer.transform(*def));
    std::printf("califormed layout: %zu bytes, %zu security bytes in "
                "%zu spans\n",
                layout->size, layout->securityByteCount(),
                layout->securityBytes.size());

    // 3. Boot a machine (Table 3 Westmere-like) and allocate the object.
    Machine machine;
    HeapAllocator heap(machine);
    const Addr obj = heap.allocate(layout);
    std::printf("allocated at 0x%llx; allocator issued %llu CFORM "
                "instruction(s)\n\n",
                static_cast<unsigned long long>(obj),
                static_cast<unsigned long long>(
                    heap.stats().cformsIssued));

    // 4. Normal use is untouched: read and write the fields.
    const auto &f_i = layout->fields[1];   // int i
    const auto &f_buf = layout->fields[2]; // char buf[64]
    machine.store(obj + f_i.offset, 4, 42);
    for (unsigned k = 0; k < 64; ++k)
        machine.store(obj + f_buf.offset + k, 1, 'A');
    std::printf("legitimate writes: %zu delivered exceptions (expect 0)\n",
                machine.exceptions().deliveredCount());

    // 5. The attack: keep writing past buf toward the function pointer.
    std::printf("\noverflowing buf toward fp...\n");
    for (unsigned k = 64; k < 80; ++k) {
        machine.store(obj + f_buf.offset + k, 1, 'X');
        if (!machine.exceptions().delivered().empty()) {
            const auto &e = machine.exceptions().delivered().front();
            std::printf("CAUGHT at byte %u past the buffer: %s\n",
                        k - 64, e.describe().c_str());
            break;
        }
    }

    const auto &f_fp = layout->fields[3];
    std::printf("fp value after the attack: 0x%llx (expect 0 - never "
                "corrupted)\n",
                static_cast<unsigned long long>(
                    machine.load(obj + f_fp.offset, 8)));

    std::printf("\nmachine ran %llu cycles, %llu instructions\n",
                static_cast<unsigned long long>(machine.cycles()),
                static_cast<unsigned long long>(machine.instructions()));
    return 0;
}
