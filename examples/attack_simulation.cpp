/**
 * @file attack_simulation.cpp
 * The Section 7.3 attacker's view: an adversary with arbitrary-read
 * capability scans the heap for a target object. Every scan step that
 * lands on a security byte raises the privileged exception; with
 * random 1..7-byte spans the survival probability collapses after a
 * handful of objects. Also demonstrates the zero-read side channel
 * defense: security bytes are indistinguishable from legitimate zero
 * data.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "alloc/heap.hh"
#include "layout/policy.hh"
#include "sim/machine.hh"
#include "util/rng.hh"

using namespace califorms;

int
main()
{
    std::puts("== derandomization attack simulation ==\n");

    Machine machine;
    HeapAllocator heap(machine);

    auto def = std::make_shared<StructDef>(
        "cred", std::vector<Field>{
                    {"uid", Type::intType()},
                    {"token", Type::array(Type::charType(), 16)},
                    {"is_admin", Type::charType()},
                }); // the attacker wants to flip is_admin
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 7, 1},
                        31337);
    auto layout = std::make_shared<SecureLayout>(t.transform(*def));

    const int population = 64;
    std::vector<Addr> objs;
    for (int i = 0; i < population; ++i)
        objs.push_back(heap.allocate(layout));

    const double density =
        static_cast<double>(layout->securityByteCount()) /
        static_cast<double>(layout->size);
    std::printf("heap: %d cred objects, %zuB each, security density "
                "%.2f\n\n",
                population, layout->size, density);

    // The attacker scans the heap linearly looking for the layout.
    Rng rng(7);
    int survived_bytes = 0;
    const Addr scan_base = objs.front();
    for (std::size_t b = 0;; ++b) {
        machine.load(scan_base + b, 1);
        if (!machine.exceptions().delivered().empty())
            break;
        ++survived_bytes;
    }
    std::printf("linear scan tripped after %d byte(s) "
                "(first security span)\n",
                survived_bytes);
    std::printf("closed form: expected survival of a full-object scan "
                "= (1-%.2f)^%zu = %.2e\n\n",
                density, layout->size,
                std::pow(1.0 - density,
                         static_cast<double>(layout->size)));

    // Side channel check (Section 7.2): the attacker reads one byte
    // speculatively. Security bytes return zero — exactly what zeroed
    // legitimate data returns, so the read leaks nothing.
    machine.exceptions().clearLogs();
    {
        WhitelistGuard guard(machine.exceptions()); // model speculation
        const auto v1 = machine.load(
            objs[1] + layout->securityBytes.front().offset, 1);
        const Addr zero_field = objs[1] + layout->fields[0].offset;
        const auto v2 = machine.load(zero_field, 1);
        std::printf("speculative read of a security byte: %llu; of "
                    "zeroed data: %llu (indistinguishable)\n",
                    static_cast<unsigned long long>(v1),
                    static_cast<unsigned long long>(v2));
    }

    // Monte-Carlo: how many random-guess writes until detection?
    machine.exceptions().clearLogs();
    machine.exceptions().setPolicy(ExceptionUnit::Policy::Terminate);
    int guesses = 0;
    while (!machine.exceptions().terminated()) {
        const Addr obj = objs[rng.nextBelow(objs.size())];
        const std::size_t off = rng.nextBelow(layout->size);
        machine.store(obj + off, 1, 0xff);
        ++guesses;
    }
    std::printf("\nblind guessing attack: process terminated after %d "
                "guess(es)\n",
                guesses);
    std::printf("(with continuous monitoring the very first tripwire "
                "hit ends the attack)\n");
    return 0;
}
